#include "op_cache.hh"

#include <algorithm>

#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace tengig {

void
OpCache::verifyAgainst(const Entry &cached, const OpList &fresh,
                       const char *where) const
{
    // Field-wise element compare: MicroOp carries padding, so a raw
    // memcmp would flag indeterminate padding bytes as divergence.
    bool same = cached.ops.size() == fresh.ops.size() &&
        cached.idlePoll == fresh.idlePoll &&
        cached.actionCount == fresh.actions.size() &&
        std::equal(cached.ops.begin(), cached.ops.end(),
                   fresh.ops.begin());
    panic_if(!same, "[opcache] verify divergence in ", where,
             ": cached ", cached.ops.size(), " ops / ",
             cached.actionCount, " actions, fresh ", fresh.ops.size(),
             " ops / ", fresh.actions.size(),
             " actions -- a stream-affecting input is missing from the "
             "path key");
}

void
OpCache::registerStats(obs::StatGroup &g) const
{
    g.add("hits", nHits, "path-key lookups served from the cache");
    g.add("misses", nMisses, "path-key lookups that recorded live");
    g.add("invalidates", nInvalidates,
          "whole-cache flushes from key churn");
    g.add("bypasses", nBypasses,
          "uncacheable dispatches (vnic TX commit gate)");
    g.derived("hitRate", [this] {
        double total = static_cast<double>(nHits.value()) +
            static_cast<double>(nMisses.value());
        return total > 0 ? static_cast<double>(nHits.value()) / total
                         : 0.0;
    }, "hits / (hits + misses)");
}

} // namespace tengig
