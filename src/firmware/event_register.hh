/**
 * @file
 * Task-level parallel firmware dispatcher (Section 3.2, Fig. 4).
 *
 * The Tigon-II-style event register is a hardware-maintained bit
 * vector with one bit per event *type*.  A processor that starts
 * handling a type owns it exclusively until it has drained all pending
 * work of that type and cleared the bit -- even if more work of the
 * same type becomes ready while it is busy and other processors sit
 * idle.  That serialization is precisely why task-level parallelism
 * stops scaling (the paper's motivation for the frame-level design);
 * the ablation bench quantifies it.
 */

#ifndef TENGIG_FIRMWARE_EVENT_REGISTER_HH
#define TENGIG_FIRMWARE_EVENT_REGISTER_HH

#include <vector>

#include "firmware/tasks.hh"
#include "proc/dispatcher.hh"

namespace tengig {

class OpCache;

class EventRegisterDispatcher : public Dispatcher
{
  public:
    /**
     * @param max_passes Bundles processed per handler activation
     *        before the core re-reads the event register (bounds the
     *        length of one op stream; the type stays owned across
     *        activations until drained).
     * @param cache Optional op-cache.  Only the empty-handed scan is
     *        cached: a claimed type's drain loop re-evaluates its
     *        ready() predicate against state mutated by the previous
     *        pass, which no up-front key can fold.
     */
    EventRegisterDispatcher(FwTasks &tasks, unsigned max_cores,
                            unsigned max_passes = 4,
                            OpCache *cache = nullptr);

    void next(unsigned core_id, OpList &out) override;

    /**
     * Parking is safe when this core owns no type, nothing is
     * claimable (every type is either busy or not ready) and the
     * pipeline is drained -- future polls provably find nothing until
     * outside work arrives and wakes the core.
     */
    bool canPark(unsigned core_id) const override;

    void notifyVirtualPolls(unsigned core_id, std::uint64_t n) override;

    std::uint64_t idlePolls() const { return idle.value(); }
    std::uint64_t dispatches() const { return found.value(); }

  private:
    struct EventType
    {
        bool isTx;
        bool (FwTasks::*ready)() const;
        bool (FwTasks::*run)(OpRecorder &);
        bool busy = false; //!< owned by some processor
    };

    /** Run the owned type until drained or the pass cap. */
    bool service(OpRecorder &rec, unsigned core_id, std::size_t type);

    /** Record the empty-handed register scan live (rotation @p start). */
    void recordIdleScan(unsigned start, OpList &out);

    FwTasks &tasks;
    OpCache *cache;
    std::vector<EventType> types;
    std::vector<int> owned;     //!< per-core owned type (-1 = none)
    Addr eventRegAddr;
    unsigned maxPasses;
    unsigned rotate = 0;

    stats::Counter idle;
    stats::Counter found;
};

} // namespace tengig

#endif // TENGIG_FIRMWARE_EVENT_REGISTER_HH
