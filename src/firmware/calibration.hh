/**
 * @file
 * Firmware cost-model calibration constants.
 *
 * The handler implementations in tasks.cc perform the real NIC
 * processing algorithms on real data structures; these constants size
 * the straight-line compute and metadata-touch footprints of each
 * task so the measured per-frame execution profile matches the paper.
 *
 * Anchoring evidence from the paper (the table digits themselves were
 * lost in the text extraction; the prose aggregates below pin them):
 *  - §2.1: sending at 812,744 frames/s needs 229 MIPS and 2.6 Gb/s of
 *    32-bit data accesses => ~281.7 instructions and ~100 accesses per
 *    sent frame (Fetch Send BD + Send Frame, ideal).
 *  - §2.1: receiving needs 206 MIPS and 2.2 Gb/s => ~253.4 instructions
 *    and ~84.6 accesses per received frame.
 *  - Fetch Send BD moves 32 BDs per DMA, Fetch Receive BD 16; a sent
 *    frame uses two BDs (42-byte header + payload), a receive buffer
 *    one.
 *  - §6.3: RMW instructions cut send ordering+dispatch instructions by
 *    51.5% and receive by 30.8%; ordering memory accesses fall 65.0%
 *    (send) and 35.2% (receive); contention on the remaining receive-
 *    path lock rises.
 *  - §6.3/Table 6: with 6 cores both configurations reach line rate --
 *    software-only at 200 MHz, RMW-enhanced at 166 MHz (17% lower).
 *
 * Frame-size independence: every constant here is per frame (or per
 * BD/batch), never per byte, because payload bytes move through the
 * DMA and MAC assists -- firmware only touches descriptors and
 * metadata, whose size does not depend on the frame's.  That is what
 * makes the model valid for the mixed-size multi-flow workloads in
 * src/traffic without recalibration: a 90-byte request costs the
 * firmware the same instructions as a 1472-byte response, and only
 * the assists' byte-proportional wire/DMA occupancy changes.
 */

#ifndef TENGIG_FIRMWARE_CALIBRATION_HH
#define TENGIG_FIRMWARE_CALIBRATION_HH

namespace tengig {
namespace cal {

/// @name Fetch Send BD (per batch of up to 32 BDs, plus per-BD parse)
/// @{
constexpr unsigned sendBdBatchAlu = 88;     //!< DMA programming + ring math
constexpr unsigned sendBdBatchStores = 6;   //!< DMA descriptor words
constexpr unsigned sendBdBatchLoads = 2;    //!< mailbox + ring state
constexpr unsigned sendBdParseLoads = 3;    //!< per BD: addr/len/flags
constexpr unsigned sendBdParseAlu = 7;      //!< per BD: validation
/** Per-segment slice arithmetic under deferred segmentation. */
constexpr unsigned tsoSegmentAlu = 6;
/// @}

/// @name Send Frame (per frame, ideal part)
/// @{
constexpr unsigned sendFrameAlu = 150;      //!< per frame straight-line
constexpr unsigned sendFrameInfoStores = 6; //!< frame info block
constexpr unsigned sendFrameTouch = 68;     //!< metadata loads/stores
/// @}

/// @name Fetch Receive BD (per batch of up to 16 BDs, plus per-BD)
/// @{
constexpr unsigned recvBdBatchAlu = 92;
constexpr unsigned recvBdBatchStores = 6;
constexpr unsigned recvBdBatchLoads = 2;
constexpr unsigned recvBdParseLoads = 1;
constexpr unsigned recvBdParseAlu = 4;
// Receive-buffer pool manipulation under the pop lock (free-list
// bookkeeping); this is the critical section of the receive path's
// remaining lock.
constexpr unsigned recvBdPopLoads = 3;
constexpr unsigned recvBdPopAlu = 9;
constexpr unsigned recvBdPopStores = 1;
/// @}

/// @name Receive Frame (per frame, ideal part)
/// @{
constexpr unsigned recvFrameAlu = 165;
constexpr unsigned recvFrameComplStores = 4; //!< completion descriptor
constexpr unsigned recvFrameTouch = 72;
/// @}

/// @name Dispatch loop
/// @{
constexpr unsigned dispatchCheckLoads = 1; //!< per progress-pointer poll
constexpr unsigned dispatchCheckAlu = 1;
constexpr unsigned claimAlu = 1;           //!< successful claim bookkeeping
constexpr unsigned eventBuildAlu = 1;      //!< build event structure
constexpr unsigned eventBuildStores = 1;
/// @}

/// @name Event-queue status maintenance (per successful claim)
/// The distributed event queue keeps per-event status words that must
/// be updated when work is claimed or retried.  The software-only
/// firmware maintains them with lock-protected load/modify/store
/// loops; the RMW-enhanced firmware uses one set and one update.
/// @{
constexpr unsigned swQueueUpdLoads = 1;
constexpr unsigned swQueueUpdAlu = 2;
constexpr unsigned swQueueUpdStores = 0;
constexpr unsigned rmwQueueUpdAlu = 1;
constexpr unsigned rmwQueueUpdRmws = 1;
// Per-work-unit event-structure maintenance: every frame in a bundle
// has its own event entry (build, link, retire).  The software-only
// firmware additionally updates the entry's status words with
// lock-protected sequences.
constexpr unsigned eventPerFrameLoads = 5;
constexpr unsigned eventPerFrameAlu = 14;
constexpr unsigned eventPerFrameStores = 3;
constexpr unsigned swEventPerFrameLoads = 3;
constexpr unsigned swEventPerFrameAlu = 8;
/// @}

/// @name Ordering (software-only strategy)
/// @{
constexpr unsigned swFlagSetAlu = 4;     //!< set one status bit (ld/or/st)
// Post-set readiness re-scan.  The transmit path pays it twice over
// (MAC-order point and completion-order point), so its constants are
// larger; both are eliminated by the set/update instructions.
constexpr unsigned swReadyCheckTxLoads = 13;
constexpr unsigned swReadyCheckTxAlu = 44;
constexpr unsigned swReadyCheckTxStores = 3;
constexpr unsigned swReadyCheckRxLoads = 4;
constexpr unsigned swReadyCheckRxAlu = 14;
constexpr unsigned swReadyCheckRxStores = 1;
constexpr unsigned swScanAluPerWord = 6; //!< find-consecutive-bits loop
constexpr unsigned swScanAluPerFrame = 5;
/// @}

/// @name Ordering (RMW-enhanced strategy)
/// @{
constexpr unsigned rmwSetAlu = 1;        //!< address generation
constexpr unsigned rmwUpdateAlu = 4;     //!< pointer math around update
/// @}

/// @name Commit actions (both strategies)
/// @{
constexpr unsigned commitPerFrameAlu = 6;  //!< hand one frame to MAC
constexpr unsigned commitPerFrameLoads = 2;
constexpr unsigned commitPerFrameStores = 2;
// The RMW firmware's hand-off is pointer-driven (the update already
// resolved the range), so its per-frame commit actions are leaner.
constexpr unsigned rmwCommitPerFrameAlu = 3;
constexpr unsigned rmwCommitPerFrameLoads = 1;
constexpr unsigned rmwCommitPerFrameStores = 1;
/** Minimum frames before an enqueue-only commit pass dispatches
 *  (hardware FIFOs are deep enough to tolerate the batching). */
constexpr unsigned enqueueBatch = 8;
/// @}

/// @name Receive dispatch extras
/// The receive path's dispatch must walk the MAC hardware descriptor
/// ring, manage the host return ring in arrival order, and coalesce
/// notifications; this work exists under both ordering strategies.
/// @{
constexpr unsigned recvDispatchExtraAlu = 30;
constexpr unsigned recvDispatchExtraLoads = 8;
constexpr unsigned recvDispatchExtraStores = 3;
/// @}

/// @name Locks
/// @{
constexpr unsigned lockAcquireAlu = 2;  //!< around the test-and-set
constexpr unsigned lockSpinAlu = 4;     //!< failed probe + backoff
constexpr unsigned lockReleaseAlu = 1;
// The paper reports that removing the ordering locks concentrates
// contention on the remaining receive-path (buffer pool) lock,
// raising receive locking costs.  A discrete-event model with
// yielding dispatchers underestimates that spin pressure, so the
// retry traffic is calibrated explicitly (per received frame, RMW
// firmware only).
constexpr unsigned rmwRxPopRetryAlu = 20;
constexpr unsigned rmwRxPopRetryRmws = 5;
/// @}

/// @name Completion / cleanup
/// @{
constexpr unsigned txCompletePerFrameAlu = 14;
constexpr unsigned txCompletePerFrameLoads = 12;
constexpr unsigned txCompleteWritebackAlu = 10;
constexpr unsigned txCompleteWritebackStores = 3;
/// @}

/** Pipeline-hazard stall cycles per 16 straight-line instructions
 *  (statically mispredicted branches + non-load hazards); calibrated
 *  to Table 3's 0.10 IPC loss. */
constexpr unsigned hazardPer16 = 4;

/** Instruction-memory code-region bytes per firmware function.  The
 *  nine regions must fit the 8 KB I-caches with room to spare so that
 *  steady-state misses match Table 3's 0.01 IPC loss (misses occur
 *  mainly when tasks migrate between cores). */
constexpr unsigned codeRegionBytes = 928;

} // namespace cal
} // namespace tengig

#endif // TENGIG_FIRMWARE_CALIBRATION_HH
