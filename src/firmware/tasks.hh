/**
 * @file
 * Firmware task implementations.
 *
 * Each tryX() method checks its work condition, atomically claims a
 * bundle of work units (the paper's frame-level event structures),
 * performs the state transition functionally, and records the micro-op
 * stream the firmware would execute, including lock acquisition/spin
 * costs and the ordering strategy's scan/RMW costs.  Hardware assist
 * programming rides along as Action entries that fire when the owning
 * core's replay reaches them.
 *
 * Both dispatcher organizations (frame-level distributed event queue,
 * task-level event register) drive these same task bodies.
 */

#ifndef TENGIG_FIRMWARE_TASKS_HH
#define TENGIG_FIRMWARE_TASKS_HH

#include <optional>

#include "assist/dma_assist.hh"
#include "assist/mac.hh"
#include "firmware/calibration.hh"
#include "firmware/fw_state.hh"
#include "host/driver.hh"
#include "proc/micro_op.hh"

namespace tengig {

/** Crossbar requester identities of the four hardware assists. */
struct AssistIds
{
    unsigned dmaRead;
    unsigned dmaWrite;
    unsigned macTx;
    unsigned macRx;
};

class FwTasks
{
  public:
    FwTasks(FwState &state, DmaAssist &dma_read, DmaAssist &dma_write,
            MacTx &mac_tx, DeviceDriver &driver, HostMemory &host,
            Addr tx_buf_sdram, Addr rx_buf_sdram, AssistIds ids);

    /// @name Task entry points
    /// Each returns true if it recorded work (a claim or a lock spin);
    /// false means the work condition did not hold and nothing was
    /// recorded.
    /// @{
    bool tryFetchSendBd(OpRecorder &rec);
    bool trySendFrame(OpRecorder &rec);
    bool tryProcessTxDma(OpRecorder &rec);
    bool tryProcessTxComplete(OpRecorder &rec);
    bool tryFetchRecvBd(OpRecorder &rec);
    bool tryRecvFrame(OpRecorder &rec);
    bool tryProcessRxDma(OpRecorder &rec);
    /// @}

    /// @name Work-condition predicates (dispatch checks poll these)
    /// @{
    bool fetchSendBdReady() const;
    bool sendFrameReady() const;
    bool processTxDmaReady() const;
    bool processTxCompleteReady() const;
    bool fetchRecvBdReady() const;
    bool recvFrameReady() const;
    bool processRxDmaReady() const;
    /// @}

    /**
     * Op-cache path key for one task (DESIGN.md §14): a 64-bit fold of
     * every input that can change the op stream the matching tryX()
     * would record *right now* -- lock outcomes, bundle sizes, ring
     * offsets, commit branches, flag-word contents.  Only valid when
     * the task's ready() predicate holds, pure (no state mutated), and
     * must be computed before tryX() runs.  `cacheable` is false when
     * the stream depends on something the key cannot see (the vnic TX
     * commit gate charges rate buckets mid-emission).
     */
    struct PathKey
    {
        std::uint64_t key = 0;
        bool cacheable = true;
    };

    /// @name Path keys, one per task entry point
    /// @{
    PathKey pathKeyFetchSendBd() const;
    PathKey pathKeySendFrame() const;
    PathKey pathKeyProcessTxDma() const;
    PathKey pathKeyProcessTxComplete() const;
    PathKey pathKeyFetchRecvBd() const;
    PathKey pathKeyRecvFrame() const;
    PathKey pathKeyProcessRxDma() const;
    /// @}

    /// @name Hardware / host glue
    /// @{
    void sendDoorbell(std::uint64_t total_bds);
    void recvDoorbell(std::uint64_t total_bds);
    std::optional<Addr> allocRxSlot(unsigned len);
    void rxFrameStored(const MacRx::StoredFrame &sf);
    /// @}

    FwState &st() { return state; }

    /** True when the whole TX+RX pipeline is drained (for tests). */
    bool quiescent() const;

    /**
     * Wire up fault injection (fault-enabled runs only).  Claimed tx
     * frames roll per-frame poison; poisoned frames are skipped at
     * the in-order MAC handoff (the skip still flows through both MAC
     * stages, so every other frame's ordering is untouched) and
     * @p on_poison_skip reports the skipped firmware sequence number
     * so the wire-side validator can expect the hole.
     */
    void
    attachFaults(FaultInjector *f,
                 std::function<void(std::uint64_t)> on_poison_skip)
    {
        faults = f;
        onPoisonSkip = std::move(on_poison_skip);
    }

    /**
     * Hook fired whenever outside work arrives or progresses (host
     * doorbells and hardware counter writes) -- everything that can
     * flip a dispatch-check predicate.  The controller uses it to wake
     * parked cores (DESIGN.md §10).
     */
    void
    setOnWorkArrival(std::function<void()> fn)
    {
        onWorkArrival = std::move(fn);
    }

    /**
     * Wire up the vnic arbitration layer (multi-function runs only,
     * DESIGN.md §13).  tx_vf_of / rx_vf_of translate a firmware
     * sequence number into the owning virtual function, for
     * per-tenant fault attribution and DMA tagging.  commit_peek asks
     * -- without charging -- whether the head frame could pass the
     * MAC-commit rate gate; commit_admit charges the owning VF's
     * enforcement bucket, returning false to stall the in-order
     * commit until the bucket refills (cores re-poll, so progress
     * resumes with the lazy refill).
     */
    void
    attachVnic(std::function<unsigned(std::uint64_t)> tx_vf_of,
               std::function<unsigned(std::uint64_t)> rx_vf_of,
               std::function<bool(std::uint64_t, unsigned)> commit_peek,
               std::function<bool(std::uint64_t, unsigned)> commit_admit)
    {
        txVfOf = std::move(tx_vf_of);
        rxVfOf = std::move(rx_vf_of);
        commitPeek = std::move(commit_peek);
        commitAdmit = std::move(commit_admit);
    }

  private:
    /// @name Lock helpers
    /// @{
    bool lockOrSpin(OpRecorder &rec, FwLock l, FuncTag lock_tag);
    void unlock(OpRecorder &rec, FwLock l, FuncTag lock_tag);
    void undoLock(FwLock l);
    /// @}

    /** Record @p n metadata touches alternating load/store at @p base. */
    void touch(OpRecorder &rec, Addr base, unsigned n);

    /** alu() with the calibrated hazard density. */
    void aluH(OpRecorder &rec, unsigned n);

    /** Record a hardware write to a shadow counter (assist-timed). */
    void hwCounterWrite(unsigned ctr, std::uint64_t value,
                        unsigned requester);

    /** True if the frame at the commit pointer is flagged done. */
    bool commitPossible(Addr flag_base, std::uint64_t ptr) const;

    /**
     * Event-queue status maintenance recorded on every successful
     * claim: lock+scan loops in the software-only firmware, a
     * set/update pair in the RMW-enhanced firmware.
     */
    void queueStatusUpdate(OpRecorder &rec, FuncTag tag, Addr status_at);

    /** Per-work-unit event-structure maintenance for a bundle of n. */
    void eventPerFrame(OpRecorder &rec, FuncTag tag, std::uint64_t first,
                       std::uint64_t n, bool tx);

    /** Set a frame's status bit under the active ordering strategy. */
    void setStatusFlag(OpRecorder &rec, Addr flag_base,
                       std::uint64_t seq, FuncTag tag);

    /**
     * Scan-and-clear consecutive status bits starting at @p from,
     * limited to @p max frames, under the active ordering strategy.
     * @return Number of consecutive done frames committed.
     */
    unsigned commitScan(OpRecorder &rec, Addr flag_base,
                        std::uint64_t from, unsigned max, FuncTag tag);

    /**
     * Pure preview of commitScan for path keying: walks the same flag
     * words, folding each iteration's (word, cleared) into @p h, and
     * returns what commitScan would commit -- without mutating the
     * scratchpad.  The pend arrays hold flag bits the same invocation's
     * flag-marking stage will set before the real scan runs; clears are
     * simulated in a local overlay.
     */
    unsigned previewCommitScan(Addr flag_base, std::uint64_t from,
                               unsigned max, std::uint64_t &h,
                               const Addr *pend_word,
                               const std::uint32_t *pend_mask,
                               unsigned n_pend) const;

    /** Shared TX/RX DMA-processing path key (the paths mirror). */
    PathKey pathKeyProcessDma(bool tx) const;

    FwState &state;
    DmaAssist &dmaRead;
    DmaAssist &dmaWrite;
    MacTx &macTx;
    DeviceDriver &driver;
    HostMemory &host;
    Addr txBufSdram;
    Addr rxBufSdram;
    AssistIds ids;
    std::function<void()> onWorkArrival;
    FaultInjector *faults = nullptr; //!< null on fault-free runs
    std::function<void(std::uint64_t)> onPoisonSkip;
    /// @name vnic hooks (all null on single-function runs)
    /// @{
    std::function<unsigned(std::uint64_t)> txVfOf;
    std::function<unsigned(std::uint64_t)> rxVfOf;
    std::function<bool(std::uint64_t, unsigned)> commitPeek;
    std::function<bool(std::uint64_t, unsigned)> commitAdmit;
    /// @}
};

} // namespace tengig

#endif // TENGIG_FIRMWARE_TASKS_HH
