#include "frame_level.hh"

#include "firmware/calibration.hh"

namespace tengig {

FrameLevelDispatcher::FrameLevelDispatcher(FwTasks &tasks_)
    : tasks(tasks_)
{
    FwState &st = tasks.st();
    // Completion-side work first (drains the pipeline), intake last.
    checks = {
        {true, st.counterAddr(FwState::CtrTxCmdsCompleted),
         &FwTasks::processTxDmaReady, &FwTasks::tryProcessTxDma},
        {false, st.counterAddr(FwState::CtrRxCmdsCompleted),
         &FwTasks::processRxDmaReady, &FwTasks::tryProcessRxDma},
        {true, st.counterAddr(FwState::CtrMacTxDone),
         &FwTasks::processTxCompleteReady,
         &FwTasks::tryProcessTxComplete},
        {false, st.counterAddr(FwState::CtrMacRxStored),
         &FwTasks::recvFrameReady, &FwTasks::tryRecvFrame},
        {true, st.counterAddr(FwState::CtrTxBdArrived),
         &FwTasks::sendFrameReady, &FwTasks::trySendFrame},
        {false, st.counterAddr(FwState::CtrHostRecvBds),
         &FwTasks::fetchRecvBdReady, &FwTasks::tryFetchRecvBd},
        {true, st.counterAddr(FwState::CtrHostPostedBds),
         &FwTasks::fetchSendBdReady, &FwTasks::tryFetchSendBd},
    };
}

void
FrameLevelDispatcher::next(unsigned core_id, OpList &out)
{
    OpRecorder rec(out, FuncTag::Idle);
    // Rotate the scan start point so cores do not converge on the same
    // queue, and so successive polls by one core cover all sources.
    unsigned start = (core_id + rotate++) % checks.size();

    bool worked = false;
    for (std::size_t i = 0; i < checks.size() && !worked; ++i) {
        const Check &c = checks[(start + i) % checks.size()];
        // Poll cost: inspect the progress pointer.
        rec.tag(c.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.load(c.pollAddr);
        rec.alu(cal::dispatchCheckAlu);
        if ((tasks.*(c.ready))())
            worked = (tasks.*(c.run))(rec);
    }

    if (!worked) {
        // Nothing anywhere: the whole pass was an idle poll.
        for (auto &op : out.ops)
            op.tag = FuncTag::Idle;
        out.idlePoll = true;
        ++idle;
    } else {
        ++found;
    }
}

bool
FrameLevelDispatcher::canPark(unsigned core_id) const
{
    (void)core_id;
    if (!tasks.quiescent())
        return false;
    for (const Check &c : checks)
        if ((tasks.*(c.ready))())
            return false;
    return true;
}

void
FrameLevelDispatcher::notifyVirtualPolls(unsigned core_id,
                                         std::uint64_t n)
{
    (void)core_id;
    // Each skipped poll would have bumped the rotation and the idle
    // counter; unsigned wraparound matches n repeated rotate++ calls.
    rotate += static_cast<unsigned>(n);
    idle += n;
}

} // namespace tengig
