#include "frame_level.hh"

#include "firmware/calibration.hh"
#include "firmware/op_cache.hh"

namespace tengig {

namespace {
/** Key-space salt separating frame-level keys from other dispatchers. */
constexpr std::uint64_t frameLevelSalt = 0x66726d6c; // 'frml'
} // namespace

FrameLevelDispatcher::FrameLevelDispatcher(FwTasks &tasks_,
                                           OpCache *cache_)
    : tasks(tasks_), cache(cache_)
{
    FwState &st = tasks.st();
    // Completion-side work first (drains the pipeline), intake last.
    checks = {
        {true, st.counterAddr(FwState::CtrTxCmdsCompleted),
         &FwTasks::processTxDmaReady, &FwTasks::tryProcessTxDma,
         &FwTasks::pathKeyProcessTxDma},
        {false, st.counterAddr(FwState::CtrRxCmdsCompleted),
         &FwTasks::processRxDmaReady, &FwTasks::tryProcessRxDma,
         &FwTasks::pathKeyProcessRxDma},
        {true, st.counterAddr(FwState::CtrMacTxDone),
         &FwTasks::processTxCompleteReady,
         &FwTasks::tryProcessTxComplete,
         &FwTasks::pathKeyProcessTxComplete},
        {false, st.counterAddr(FwState::CtrMacRxStored),
         &FwTasks::recvFrameReady, &FwTasks::tryRecvFrame,
         &FwTasks::pathKeyRecvFrame},
        {true, st.counterAddr(FwState::CtrTxBdArrived),
         &FwTasks::sendFrameReady, &FwTasks::trySendFrame,
         &FwTasks::pathKeySendFrame},
        {false, st.counterAddr(FwState::CtrHostRecvBds),
         &FwTasks::fetchRecvBdReady, &FwTasks::tryFetchRecvBd,
         &FwTasks::pathKeyFetchRecvBd},
        {true, st.counterAddr(FwState::CtrHostPostedBds),
         &FwTasks::fetchSendBdReady, &FwTasks::tryFetchSendBd,
         &FwTasks::pathKeyFetchSendBd},
    };
}

void
FrameLevelDispatcher::next(unsigned core_id, OpList &out)
{
    // Rotate the scan start point so cores do not converge on the same
    // queue, and so successive polls by one core cover all sources.
    unsigned start = (core_id + rotate++) % checks.size();
    if (cache) {
        cachedNext(start, out);
        return;
    }
    std::size_t j = checks.size();
    for (std::size_t i = 0; i < checks.size(); ++i) {
        if ((tasks.*(checks[(start + i) % checks.size()].ready))()) {
            j = i;
            break;
        }
    }
    recordLive(start, j, out);
}

void
FrameLevelDispatcher::cachedNext(unsigned start, OpList &out)
{
    const std::size_t n = checks.size();
    // Pure predicate scan: which check will claim work this pass.
    std::size_t j = n;
    for (std::size_t i = 0; i < n; ++i) {
        if ((tasks.*(checks[(start + i) % n].ready))()) {
            j = i;
            break;
        }
    }

    std::uint64_t key = OpCache::seed(frameLevelSalt);
    key = OpCache::mix(key, start);
    key = OpCache::mix(key, j);
    if (j < n) {
        FwTasks::PathKey pk = (tasks.*(checks[(start + j) % n].key))();
        if (!pk.cacheable) {
            cache->noteBypass();
            recordLive(start, j, out);
            return;
        }
        key = OpCache::mix(key, pk.key);
    }

    const OpCache::Entry *hit = cache->lookup(key);
    if (hit && !cache->verify()) {
        out.ops.assign(hit->ops.begin(), hit->ops.end());
        out.idlePoll = hit->idlePoll;
        // Muted recorder: the handler's functional state transition
        // (claims, lock flips, flag words, fresh action closures) still
        // happens; only the emission is skipped.
        OpRecorder rec = OpRecorder::replayInto(out, FuncTag::Idle);
        if (j < n) {
            bool worked = (tasks.*(checks[(start + j) % n].run))(rec);
            panic_if(!worked, "[opcache] frame-level check ", j,
                     " was ready but refused work on a cached path");
            ++found;
        } else {
            ++idle;
        }
        panic_if(out.actions.size() != hit->actionCount,
                 "[opcache] frame-level replay produced ",
                 out.actions.size(), " actions, cached stream has ",
                 hit->actionCount,
                 " -- a stream-affecting input is missing from the key");
        return;
    }

    recordLive(start, j, out);
    if (hit)
        cache->verifyAgainst(*hit, out, "frame-level dispatch");
    else
        cache->insert(key, out);
}

void
FrameLevelDispatcher::recordLive(unsigned start, std::size_t j,
                                 OpList &out)
{
    const std::size_t n = checks.size();
    // Tag at service entry: the recorder opens in the first scanned
    // check's dispatch bucket, never Idle.
    const Check &c0 = checks[start];
    OpRecorder rec(out, c0.isTx ? FuncTag::SendDispatch
                                : FuncTag::RecvDispatch);
    bool worked = false;
    std::size_t limit = j < n ? j + 1 : n;
    for (std::size_t i = 0; i < limit; ++i) {
        const Check &c = checks[(start + i) % n];
        // Poll cost: inspect the progress pointer.
        rec.tag(c.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.load(c.pollAddr);
        rec.alu(cal::dispatchCheckAlu);
        if (i == j) {
            worked = (tasks.*(c.run))(rec);
            panic_if(!worked, "[fw dispatch] check ", i,
                     " was ready but refused work");
        }
    }

    if (!worked) {
        // Nothing anywhere: the whole pass was an idle poll.
        for (auto &op : out.ops)
            op.tag = FuncTag::Idle;
        out.idlePoll = true;
        ++idle;
    } else {
        ++found;
    }
}

bool
FrameLevelDispatcher::canPark(unsigned core_id) const
{
    (void)core_id;
    if (!tasks.quiescent())
        return false;
    for (const Check &c : checks)
        if ((tasks.*(c.ready))())
            return false;
    return true;
}

void
FrameLevelDispatcher::notifyVirtualPolls(unsigned core_id,
                                         std::uint64_t n)
{
    (void)core_id;
    // Each skipped poll would have bumped the rotation and the idle
    // counter; unsigned wraparound matches n repeated rotate++ calls.
    rotate += static_cast<unsigned>(n);
    idle += n;
}

} // namespace tengig
