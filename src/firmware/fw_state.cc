#include "fw_state.hh"

#include "sim/logging.hh"

namespace tengig {

FwState::FwState(Scratchpad &spad_, const FwConfig &cfg)
    : spad(spad_), config(cfg)
{
    fatal_if(cfg.txSlots == 0 || (cfg.txSlots & (cfg.txSlots - 1)),
             "txSlots must be a power of two");
    fatal_if(cfg.rxSlots == 0 || (cfg.rxSlots & (cfg.rxSlots - 1)),
             "rxSlots must be a power of two");
    fatal_if(cfg.bdCacheBds == 0 ||
             (cfg.bdCacheBds & (cfg.bdCacheBds - 1)),
             "bdCacheBds must be a power of two");
    fatal_if(cfg.bundleFrames == 0, "bundleFrames must be >= 1");

    // The flag rings must cover every in-flight frame; slots bound the
    // in-flight window, so flagBits = 2 * slots is always safe.
    flagBits = 2 * std::max(cfg.txSlots, cfg.rxSlots);

    auto &st = spad.storage();
    counterBase = st.alloc(4 * NumCounters, 64);
    lockBase = st.alloc(4 * numFwLocks, 64);
    metadataStart = st.allocated();
    txFlagBase = st.alloc(flagBits / 8, 64);
    rxFlagBase = st.alloc(flagBits / 8, 64);
    sendBdCache = st.alloc(16 * cfg.bdCacheBds, 64);
    recvBdCache = st.alloc(16 * cfg.bdCacheBds, 64);
    rxHwDescBase = st.alloc(8 * cfg.rxSlots, 64);
    rxComplBase = st.alloc(16 * cfg.rxSlots, 64);
    txCmdRingBase = st.alloc(4 * cfg.txSlots, 64);
    rxCmdRingBase = st.alloc(4 * cfg.rxSlots, 64);
    txInfoBase = st.alloc(infoBytes * cfg.txSlots, 64);
    rxInfoBase = st.alloc(infoBytes * cfg.rxSlots, 64);
    // Event structures live in a dedicated section (last eventBytes)
    // of each frame's metadata block: stage handoffs between cores
    // touch the same lines the building core wrote.
    txEventBase = txInfoBase + infoBytes - eventBytes;
    rxEventBase = rxInfoBase + infoBytes - eventBytes;

    txCmdSeq.assign(cfg.txSlots, 0);
    rxCmdSeq.assign(cfg.rxSlots, 0);
    txInfo.assign(cfg.txSlots, TxFrameInfo{});
    rxInfo.assign(cfg.rxSlots, RxFrameInfo{});
    txPoison.assign(cfg.txSlots, 0);
}

std::string
FwState::pipelineReport() const
{
    auto line = [](const char *name, std::uint64_t v) {
        return std::string("  ") + name + " = " + std::to_string(v) +
               "\n";
    };
    std::string r = "firmware pipeline state:\n";
    r += line("hostPostedBds", hostPostedBds);
    r += line("txBdFetchIssuedBds", txBdFetchIssuedBds);
    r += line("txBdArrivedBds", txBdArrivedBds);
    r += line("txClaimedFrames", txClaimedFrames);
    r += line("txCmdsPushed", txCmdsPushed);
    r += line("txCmdsCompleted", txCmdsCompleted);
    r += line("txDmaProcessed", txDmaProcessed);
    r += line("txOrderedReady", txOrderedReady);
    r += line("txMacEnqueued", txMacEnqueued);
    r += line("macTxDone", macTxDone);
    r += line("txComplProcessed", txComplProcessed);
    r += line("txFreedFrames", txFreedFrames);
    r += line("txConsumedReported", txConsumedReported);
    r += line("hostRecvBdsPosted", hostRecvBdsPosted);
    r += line("rxBdFetchIssuedBds", rxBdFetchIssuedBds);
    r += line("rxBdArrivedBds", rxBdArrivedBds);
    r += line("rxBdConsumedBds", rxBdConsumedBds);
    r += line("macRxAllocated", macRxAllocated);
    r += line("macRxStored", macRxStored);
    r += line("rxClaimedFrames", rxClaimedFrames);
    r += line("rxCmdsPushed", rxCmdsPushed);
    r += line("rxCmdsCompleted", rxCmdsCompleted);
    r += line("rxDmaProcessed", rxDmaProcessed);
    r += line("rxOrderedReady", rxOrderedReady);
    r += line("rxCommitted", rxCommitted);
    r += line("rxSlotsFreed", rxSlotsFreed);
    r += line("dmaReadReserved", dmaReadReserved);
    r += line("dmaWriteReserved", dmaWriteReserved);
    r += line("macTxReserved", macTxReserved);
    return r;
}

} // namespace tengig
