#include "event_register.hh"

#include "firmware/calibration.hh"

namespace tengig {

EventRegisterDispatcher::EventRegisterDispatcher(FwTasks &tasks_,
                                                 unsigned max_cores,
                                                 unsigned max_passes)
    : tasks(tasks_), owned(max_cores, -1), maxPasses(max_passes)
{
    types = {
        {true, &FwTasks::processTxDmaReady, &FwTasks::tryProcessTxDma},
        {false, &FwTasks::processRxDmaReady, &FwTasks::tryProcessRxDma},
        {true, &FwTasks::processTxCompleteReady,
         &FwTasks::tryProcessTxComplete},
        {false, &FwTasks::recvFrameReady, &FwTasks::tryRecvFrame},
        {true, &FwTasks::sendFrameReady, &FwTasks::trySendFrame},
        {false, &FwTasks::fetchRecvBdReady, &FwTasks::tryFetchRecvBd},
        {true, &FwTasks::fetchSendBdReady, &FwTasks::tryFetchSendBd},
    };
    eventRegAddr = tasks.st().spad.storage().alloc(4, 4);
}

bool
EventRegisterDispatcher::service(OpRecorder &rec, unsigned core_id,
                                 std::size_t ti)
{
    EventType &t = types[ti];
    bool any = false;
    for (unsigned pass = 0; pass < maxPasses; ++pass) {
        if (!(tasks.*(t.ready))())
            break;
        if (!(tasks.*(t.run))(rec))
            break;
        any = true;
    }
    if (!(tasks.*(t.ready))()) {
        // Drained: clear the event bit and release the type.
        rec.tag(t.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.store(eventRegAddr);
        rec.alu(2);
        rec.action([this, ti] { types[ti].busy = false; });
        owned[core_id] = -1;
    }
    return any;
}

void
EventRegisterDispatcher::next(unsigned core_id, OpList &out)
{
    OpRecorder rec(out, FuncTag::Idle);

    // A processor that owns a type keeps draining it (no other core
    // may touch that type meanwhile).
    if (owned[core_id] >= 0) {
        std::size_t ti = static_cast<std::size_t>(owned[core_id]);
        rec.tag(types[ti].isTx ? FuncTag::SendDispatch
                               : FuncTag::RecvDispatch);
        rec.load(eventRegAddr);
        rec.alu(cal::dispatchCheckAlu);
        service(rec, core_id, ti);
        ++found;
        return;
    }

    // Read the event register (one load: the hardware maintains the
    // bit vector) and scan for a set bit whose type is unowned.
    rec.load(eventRegAddr);
    rec.alu(cal::dispatchCheckAlu);

    unsigned start = rotate++;
    bool worked = false;
    for (std::size_t i = 0; i < types.size() && !worked; ++i) {
        std::size_t ti = (start + i) % types.size();
        EventType &t = types[ti];
        rec.tag(t.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.alu(1); // bit test
        if (t.busy || !(tasks.*(t.ready))())
            continue;
        // Claim the type.
        t.busy = true;
        owned[core_id] = static_cast<int>(ti);
        rec.store(eventRegAddr);
        worked = true;
        service(rec, core_id, ti);
    }

    if (!worked) {
        for (auto &op : out.ops)
            op.tag = FuncTag::Idle;
        out.idlePoll = true;
        ++idle;
    } else {
        ++found;
    }
}

bool
EventRegisterDispatcher::canPark(unsigned core_id) const
{
    if (owned[core_id] >= 0)
        return false;
    if (!tasks.quiescent())
        return false;
    for (const EventType &t : types)
        if (!t.busy && (tasks.*(t.ready))())
            return false;
    return true;
}

void
EventRegisterDispatcher::notifyVirtualPolls(unsigned core_id,
                                            std::uint64_t n)
{
    (void)core_id;
    rotate += static_cast<unsigned>(n);
    idle += n;
}

} // namespace tengig
