#include "event_register.hh"

#include "firmware/calibration.hh"
#include "firmware/op_cache.hh"

namespace tengig {

namespace {
/** Key-space salt separating event-register keys. */
constexpr std::uint64_t eventRegSalt = 0x65767267; // 'evrg'
} // namespace

EventRegisterDispatcher::EventRegisterDispatcher(FwTasks &tasks_,
                                                 unsigned max_cores,
                                                 unsigned max_passes,
                                                 OpCache *cache_)
    : tasks(tasks_), cache(cache_), owned(max_cores, -1),
      maxPasses(max_passes)
{
    types = {
        {true, &FwTasks::processTxDmaReady, &FwTasks::tryProcessTxDma},
        {false, &FwTasks::processRxDmaReady, &FwTasks::tryProcessRxDma},
        {true, &FwTasks::processTxCompleteReady,
         &FwTasks::tryProcessTxComplete},
        {false, &FwTasks::recvFrameReady, &FwTasks::tryRecvFrame},
        {true, &FwTasks::sendFrameReady, &FwTasks::trySendFrame},
        {false, &FwTasks::fetchRecvBdReady, &FwTasks::tryFetchRecvBd},
        {true, &FwTasks::fetchSendBdReady, &FwTasks::tryFetchSendBd},
    };
    eventRegAddr = tasks.st().spad.storage().alloc(4, 4);
}

bool
EventRegisterDispatcher::service(OpRecorder &rec, unsigned core_id,
                                 std::size_t ti)
{
    EventType &t = types[ti];
    bool any = false;
    for (unsigned pass = 0; pass < maxPasses; ++pass) {
        if (!(tasks.*(t.ready))())
            break;
        if (!(tasks.*(t.run))(rec))
            break;
        any = true;
    }
    if (!(tasks.*(t.ready))()) {
        // Drained: clear the event bit and release the type.
        rec.tag(t.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.store(eventRegAddr);
        rec.alu(2);
        rec.action([this, ti] { types[ti].busy = false; });
        owned[core_id] = -1;
    }
    return any;
}

void
EventRegisterDispatcher::recordIdleScan(unsigned start, OpList &out)
{
    OpRecorder rec(out, FuncTag::Idle);
    rec.load(eventRegAddr);
    rec.alu(cal::dispatchCheckAlu);
    for (std::size_t i = 0; i < types.size(); ++i) {
        const EventType &t = types[(start + i) % types.size()];
        rec.tag(t.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.alu(1); // bit test
    }
    for (auto &op : out.ops)
        op.tag = FuncTag::Idle;
    out.idlePoll = true;
}

void
EventRegisterDispatcher::next(unsigned core_id, OpList &out)
{
    // A processor that owns a type keeps draining it (no other core
    // may touch that type meanwhile).  Never cached: each drain pass
    // re-evaluates ready() against state its previous pass mutated.
    if (owned[core_id] >= 0) {
        std::size_t ti = static_cast<std::size_t>(owned[core_id]);
        OpRecorder rec(out, types[ti].isTx ? FuncTag::SendDispatch
                                           : FuncTag::RecvDispatch);
        rec.load(eventRegAddr);
        rec.alu(cal::dispatchCheckAlu);
        service(rec, core_id, ti);
        ++found;
        return;
    }

    const std::size_t n = types.size();
    if (cache) {
        // Pure claimability scan; the empty-handed register scan is the
        // steady-state hot path and its emission depends only on the
        // rotation (every type pays its bit test, claimed or not).
        bool claimable = false;
        for (std::size_t i = 0; i < n && !claimable; ++i) {
            const EventType &t = types[(rotate + i) % n];
            claimable = !t.busy && (tasks.*(t.ready))();
        }
        if (!claimable) {
            unsigned start = rotate++;
            std::uint64_t key = OpCache::seed(eventRegSalt);
            key = OpCache::mix(key, start % n);
            const OpCache::Entry *hit = cache->lookup(key);
            if (hit && !cache->verify()) {
                out.ops.assign(hit->ops.begin(), hit->ops.end());
                out.actions.clear();
                out.idlePoll = true;
                panic_if(hit->actionCount != 0,
                         "[opcache] cached idle scan carries actions");
                ++idle;
                return;
            }
            recordIdleScan(start, out);
            ++idle;
            if (hit)
                cache->verifyAgainst(*hit, out,
                                     "event-register idle scan");
            else
                cache->insert(key, out);
            return;
        }
    }

    // Read the event register (one load: the hardware maintains the
    // bit vector) and scan for a set bit whose type is unowned.
    OpRecorder rec(out, FuncTag::Idle);
    rec.load(eventRegAddr);
    rec.alu(cal::dispatchCheckAlu);

    unsigned start = rotate++;
    bool worked = false;
    std::size_t claimed = n;
    for (std::size_t i = 0; i < n && !worked; ++i) {
        std::size_t ti = (start + i) % n;
        EventType &t = types[ti];
        rec.tag(t.isTx ? FuncTag::SendDispatch : FuncTag::RecvDispatch);
        rec.alu(1); // bit test
        if (t.busy || !(tasks.*(t.ready))())
            continue;
        // Claim the type.
        t.busy = true;
        owned[core_id] = static_cast<int>(ti);
        rec.store(eventRegAddr);
        worked = true;
        claimed = ti;
        service(rec, core_id, ti);
    }

    if (!worked) {
        for (auto &op : out.ops)
            op.tag = FuncTag::Idle;
        out.idlePoll = true;
        ++idle;
    } else {
        // Tag at service entry: the event-register read recorded before
        // the claim was known belongs to the claimed type's dispatch
        // bucket, not Idle.
        // Tag at service entry: the event-register read recorded before
        // the claim was known belongs to the claimed type's dispatch
        // bucket, not Idle.
        FuncTag dt = types[claimed].isTx ? FuncTag::SendDispatch
                                         : FuncTag::RecvDispatch;
        for (auto &op : out.ops) {
            if (op.tag != FuncTag::Idle)
                break;
            op.tag = dt;
        }
        ++found;
    }
}

bool
EventRegisterDispatcher::canPark(unsigned core_id) const
{
    if (owned[core_id] >= 0)
        return false;
    if (!tasks.quiescent())
        return false;
    for (const EventType &t : types)
        if (!t.busy && (tasks.*(t.ready))())
            return false;
    return true;
}

void
EventRegisterDispatcher::notifyVirtualPolls(unsigned core_id,
                                            std::uint64_t n)
{
    (void)core_id;
    rotate += static_cast<unsigned>(n);
    idle += n;
}

} // namespace tengig
