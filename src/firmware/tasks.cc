#include "tasks.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "firmware/op_cache.hh"

namespace tengig {

namespace {

/** Safe distance between monotonic counters. */
inline std::uint64_t
dist(std::uint64_t newer, std::uint64_t older)
{
    return newer >= older ? newer - older : 0;
}

} // namespace

FwTasks::FwTasks(FwState &state_, DmaAssist &dma_read,
                 DmaAssist &dma_write, MacTx &mac_tx,
                 DeviceDriver &driver_, HostMemory &host_,
                 Addr tx_buf_sdram, Addr rx_buf_sdram, AssistIds ids_)
    : state(state_), dmaRead(dma_read), dmaWrite(dma_write),
      macTx(mac_tx), driver(driver_), host(host_),
      txBufSdram(tx_buf_sdram), rxBufSdram(rx_buf_sdram), ids(ids_)
{}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

void
FwTasks::aluH(OpRecorder &rec, unsigned n)
{
    rec.alu(n, n * cal::hazardPer16 / 16);
}

void
FwTasks::touch(OpRecorder &rec, Addr base, unsigned n)
{
    if (!rec.live())
        return;
    // Walk the frame's metadata block at (cache-)line stride: real
    // per-frame state is many small structures (frame descriptor, DMA
    // descriptors, offload context), so consecutive accesses rarely
    // share a line -- the low locality Figure 3 hinges on.
    constexpr unsigned bytes = FwState::infoBytes - FwState::eventBytes;
    unsigned build = (2 * n) / 5; // build phase writes, later reads
    for (unsigned i = 0; i < n; ++i) {
        Addr a = base + (16 * i + 4 * (i % 4)) % bytes;
        a &= ~static_cast<Addr>(3);
        if (i < build)
            rec.store(a);
        else
            rec.load(a);
    }
}

void
FwTasks::hwCounterWrite(unsigned ctr, std::uint64_t value,
                        unsigned requester)
{
    Addr a = state.counterAddr(ctr);
    state.spad.storage().storeWord(a, static_cast<std::uint32_t>(value));
    state.spad.access(requester, a, SpadOp::WriteTiming, 0, nullptr);
    if (onWorkArrival)
        onWorkArrival();
}

bool
FwTasks::lockOrSpin(OpRecorder &rec, FwLock l, FuncTag lock_tag)
{
    if (state.config.idealMode)
        return true;
    unsigned li = static_cast<unsigned>(l);
    FuncTag saved = rec.tag();
    rec.tag(lock_tag);
    rec.alu(cal::lockAcquireAlu);
    rec.rmw(state.lockAddr(l));
    if (state.lockHeld[li]) {
        ++state.lockSpins[li];
        rec.alu(cal::lockSpinAlu);
        rec.tag(saved);
        return false;
    }
    state.lockHeld[li] = true;
    ++state.lockAcquires[li];
    rec.tag(saved);
    return true;
}

void
FwTasks::unlock(OpRecorder &rec, FwLock l, FuncTag lock_tag)
{
    if (state.config.idealMode)
        return;
    FuncTag saved = rec.tag();
    rec.tag(lock_tag);
    rec.store(state.lockAddr(l));
    rec.alu(cal::lockReleaseAlu);
    rec.action([this, l] {
        state.lockHeld[static_cast<unsigned>(l)] = false;
    });
    rec.tag(saved);
}

void
FwTasks::undoLock(FwLock l)
{
    if (!state.config.idealMode)
        state.lockHeld[static_cast<unsigned>(l)] = false;
}

void
FwTasks::queueStatusUpdate(OpRecorder &rec, FuncTag tag, Addr status_at)
{
    if (state.config.idealMode || !rec.live())
        return;
    FuncTag saved = rec.tag();
    rec.tag(tag);
    if (state.config.rmwEnhanced) {
        rec.alu(cal::rmwQueueUpdAlu);
        for (unsigned i = 0; i < cal::rmwQueueUpdRmws; ++i)
            rec.rmw(status_at + 4 * i);
    } else {
        for (unsigned i = 0; i < cal::swQueueUpdLoads; ++i)
            rec.load(status_at + 4 * i);
        aluH(rec, cal::swQueueUpdAlu);
        for (unsigned i = 0; i < cal::swQueueUpdStores; ++i)
            rec.store(status_at + 4 * i);
    }
    rec.tag(saved);
}

void
FwTasks::eventPerFrame(OpRecorder &rec, FuncTag tag, std::uint64_t first,
                       std::uint64_t n, bool tx)
{
    if (state.config.idealMode || !rec.live())
        return;
    FuncTag saved = rec.tag();
    rec.tag(tag);
    Addr base = tx ? state.txEventBase : state.rxEventBase;
    unsigned slots = tx ? state.config.txSlots : state.config.rxSlots;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr at = base + ((first + i) % slots) * FwState::infoBytes;
        for (unsigned k = 0; k < cal::eventPerFrameLoads; ++k)
            rec.load(at + 4 * (k % 8));
        aluH(rec, cal::eventPerFrameAlu);
        for (unsigned k = 0; k < cal::eventPerFrameStores; ++k)
            rec.store(at + 4 * ((k + 4) % 8));
        if (!state.config.rmwEnhanced) {
            for (unsigned k = 0; k < cal::swEventPerFrameLoads; ++k)
                rec.load(at + 4 * ((k + 2) % 8));
            aluH(rec, cal::swEventPerFrameAlu);
        }
    }
    rec.tag(saved);
}

void
FwTasks::setStatusFlag(OpRecorder &rec, Addr flag_base, std::uint64_t seq,
                       FuncTag tag)
{
    Addr word = state.flagWordAddr(flag_base, seq);
    unsigned bit = state.flagBit(seq) % 32;
    if (!rec.live()) {
        // Replay: the emission below is cached; only the functional
        // flag-bit update must still happen.
        state.spad.functionalAtomicSet(word, bit);
        return;
    }
    FuncTag saved = rec.tag();
    rec.tag(tag);
    if (state.config.rmwEnhanced) {
        // One atomic set instruction.
        rec.alu(cal::rmwSetAlu);
        rec.rmw(word);
    } else {
        // load / or / store sequence (the caller holds the flag lock),
        // followed by the consecutive-range readiness check the paper
        // describes: after every status update the software must
        // re-examine the flag words around the commit pointer to
        // decide whether a hardware pointer update is now possible.
        // This looping memory traffic is exactly what the update RMW
        // instruction eliminates.
        rec.load(word);
        rec.alu(cal::swFlagSetAlu);
        rec.store(word);
        bool tx = flag_base == state.txFlagBase;
        unsigned loads = tx ? cal::swReadyCheckTxLoads
                            : cal::swReadyCheckRxLoads;
        unsigned alu = tx ? cal::swReadyCheckTxAlu
                          : cal::swReadyCheckRxAlu;
        unsigned stores = tx ? cal::swReadyCheckTxStores
                             : cal::swReadyCheckRxStores;
        for (unsigned i = 0; i < loads; ++i)
            rec.load(word + 4 * i);
        aluH(rec, alu);
        for (unsigned i = 0; i < stores; ++i)
            rec.store(word + 4 + 4 * i);
    }
    state.spad.functionalAtomicSet(word, bit);
    rec.tag(saved);
}

unsigned
FwTasks::commitScan(OpRecorder &rec, Addr flag_base, std::uint64_t from,
                    unsigned max, FuncTag tag)
{
    FuncTag saved = rec.tag();
    rec.tag(tag);
    unsigned committed = 0;
    auto &storage = state.spad.storage();

    if (state.config.rmwEnhanced) {
        // One update RMW per aligned word; each clears the consecutive
        // run it finds (bounded by the word boundary).
        while (committed < max) {
            std::uint64_t seq = from + committed;
            Addr word = state.flagWordAddr(flag_base, seq);
            unsigned bit = state.flagBit(seq) % 32;
            rec.alu(cal::rmwUpdateAlu);
            rec.rmw(word);
            std::uint32_t n = state.spad.functionalAtomicUpdate(word, bit);
            committed += n;
            if (bit + n < 32)
                break; // run ended inside the word
        }
    } else {
        // Lock-protected scan: load each word, walk consecutive bits,
        // clear, store back (the caller holds the order lock).
        while (committed < max) {
            std::uint64_t seq = from + committed;
            Addr word = state.flagWordAddr(flag_base, seq);
            unsigned bit = state.flagBit(seq) % 32;
            rec.load(word);
            rec.alu(cal::swScanAluPerWord);
            std::uint32_t v = storage.loadWord(word);
            unsigned cleared = 0;
            while (bit + cleared < 32 && committed + cleared < max &&
                   (v & (1u << (bit + cleared)))) {
                v &= ~(1u << (bit + cleared));
                ++cleared;
            }
            if (cleared > 0) {
                storage.storeWord(word, v);
                rec.alu(cal::swScanAluPerFrame * cleared);
                rec.store(word);
            }
            committed += cleared;
            if (bit + cleared < 32 || cleared == 0)
                break; // run ended (or word exhausted without bits)
        }
    }
    rec.tag(saved);
    return committed;
}

bool
FwTasks::quiescent() const
{
    return state.txClaimedFrames == state.txBdArrivedFrames() &&
           state.txCmdsPushed == state.txCmdsCompleted &&
           state.txDmaProcessed == state.txCmdsCompleted &&
           state.txOrderedReady == state.txDmaProcessed &&
           state.txMacEnqueued == state.txOrderedReady &&
           state.macTxDone == state.txMacEnqueued &&
           state.txComplProcessed == state.macTxDone &&
           state.rxClaimedFrames == state.macRxStored &&
           state.rxCmdsPushed == state.rxCmdsCompleted &&
           state.rxDmaProcessed == state.rxCmdsCompleted &&
           state.rxOrderedReady == state.rxDmaProcessed &&
           state.rxCommitted == state.rxOrderedReady;
}

// ---------------------------------------------------------------------
// Transmit path
// ---------------------------------------------------------------------

bool
FwTasks::fetchSendBdReady() const
{
    if (dist(state.hostPostedBds, state.txBdFetchIssuedBds) == 0)
        return false;
    if (dmaRead.depth() + state.dmaReadReserved + 1 >= dmaRead.capacity())
        return false;
    // Scratchpad BD cache space: unparsed BDs must fit (a BD pair
    // covers tsoSegments frames).
    std::uint64_t parsed =
        state.txClaimedFrames / state.config.tsoSegments * 2;
    return dist(state.txBdFetchIssuedBds, parsed) +
           state.config.sendBdBatch <= state.config.bdCacheBds;
}

bool
FwTasks::tryFetchSendBd(OpRecorder &rec)
{
    if (!fetchSendBdReady())
        return false;
    if (!lockOrSpin(rec, FwLock::SendDispatch, FuncTag::SendLock))
        return true; // spin recorded

    ++state.invFetchSendBd;
    std::uint64_t issued = state.txBdFetchIssuedBds;
    std::uint64_t avail = dist(state.hostPostedBds, issued);
    unsigned ring_bds = driver.sendRingCapacityBds();
    unsigned cache = state.config.bdCacheBds;
    std::uint64_t batch = std::min<std::uint64_t>(
        {avail, state.config.sendBdBatch,
         ring_bds - (issued % ring_bds), cache - (issued % cache)});

    rec.tag(FuncTag::FetchSendBd);
    aluH(rec, cal::sendBdBatchAlu);
    for (unsigned i = 0; i < cal::sendBdBatchLoads; ++i)
        rec.load(state.counterAddr(FwState::CtrHostPostedBds) + 4 * i);
    for (unsigned i = 0; i < cal::sendBdBatchStores; ++i)
        rec.store(state.sendBdCache + 4 * i);

    Addr host_at = driver.sendBdRingBase() +
        (issued % ring_bds) * BufferDesc::bytes;
    Addr local_at = state.sendBdCache + (issued % cache) *
        BufferDesc::bytes;
    state.txBdFetchIssuedBds += batch;
    ++state.dmaReadReserved;
    rec.action([this, host_at, local_at, batch] {
        --state.dmaReadReserved;
        bool ok = dmaRead.push(DmaCommand{
            DmaCommand::Kind::HostToSpad, host_at, local_at,
            batch * BufferDesc::bytes, 0,
            [this, batch] {
                state.txBdArrivedBds += batch;
                hwCounterWrite(FwState::CtrTxBdArrived,
                               state.txBdArrivedBds, ids.dmaRead);
            }});
        panic_if(!ok, "[fw send-bd] dma read FIFO overflow despite "
                 "reservation @tick ", dmaRead.curTick());
    });
    unlock(rec, FwLock::SendDispatch, FuncTag::SendLock);
    return true;
}

bool
FwTasks::sendFrameReady() const
{
    if (dist(state.txBdArrivedFrames(), state.txClaimedFrames) == 0)
        return false;
    if (!state.txSlotAvailable(state.txClaimedFrames))
        return false;
    if (dmaRead.depth() + state.dmaReadReserved +
        2 * state.config.bundleFrames >= dmaRead.capacity())
        return false;
    // Command-ring space: completed-but-unprocessed entries still live.
    return dist(state.txCmdsPushed, state.txDmaProcessed) +
           2 * state.config.bundleFrames < state.config.txSlots;
}

bool
FwTasks::trySendFrame(OpRecorder &rec)
{
    if (!sendFrameReady())
        return false;
    if (!lockOrSpin(rec, FwLock::SendDispatch, FuncTag::SendLock))
        return true;

    ++state.invSendFrame;
    std::uint64_t avail = dist(state.txBdArrivedFrames(),
                               state.txClaimedFrames);
    std::uint64_t slots = state.config.txSlots -
        dist(state.txClaimedFrames, state.txFreedFrames);
    std::uint64_t n = std::min<std::uint64_t>(
        {avail, slots, state.config.bundleFrames});
    std::uint64_t first = state.txClaimedFrames;
    state.txClaimedFrames += n;
    state.dmaReadReserved += static_cast<unsigned>(2 * n);

    rec.tag(FuncTag::SendDispatch);
    rec.store(state.counterAddr(FwState::CtrTxClaimed));
    unlock(rec, FwLock::SendDispatch, FuncTag::SendLock);
    aluH(rec, cal::claimAlu + cal::eventBuildAlu);
    for (unsigned i = 1; i < cal::eventBuildStores; ++i)
        rec.store(state.counterAddr(FwState::CtrTxClaimed) + 4 * i);
    queueStatusUpdate(rec, FuncTag::SendDispatch,
                      state.counterAddr(FwState::CtrTxClaimed));
    eventPerFrame(rec, FuncTag::SendDispatch, first, n, true);

    unsigned cache = state.config.bdCacheBds;
    unsigned segs = state.config.tsoSegments;
    for (std::uint64_t seq = first; seq < first + n; ++seq) {
        // Parse the group's two BDs out of the scratchpad BD cache
        // (real bytes the DMA assist fetched from the host ring).
        // With deferred segmentation a descriptor pair covers
        // tsoSegments frames, so the parse cost is paid once per
        // group -- the firmware-side TSO saving.
        auto &storage = state.spad.storage();
        std::uint64_t group = seq / segs;
        unsigned seg = static_cast<unsigned>(seq % segs);
        FwState::TxFrameInfo info{};
        if (seg == 0) {
            rec.tag(FuncTag::FetchSendBd);
            for (unsigned b = 0; b < 2; ++b) {
                Addr bd_at = state.sendBdCache +
                    ((group * 2 + b) % cache) * BufferDesc::bytes;
                std::uint64_t addr_lo = storage.loadWord(bd_at);
                std::uint64_t addr_hi = storage.loadWord(bd_at + 4);
                std::uint32_t len = storage.loadWord(bd_at + 8);
                std::uint64_t haddr = addr_lo | (addr_hi << 32);
                if (b == 0) {
                    info.hostHdrAddr = haddr;
                    info.hdrLen = len;
                } else {
                    info.hostPayAddr = haddr;
                    info.payLen = len / segs;
                }
                for (unsigned i = 0; i < cal::sendBdParseLoads; ++i)
                    rec.load(bd_at + 4 * i);
                aluH(rec, cal::sendBdParseAlu);
            }
        } else {
            // Subsequent segments reuse the parsed group state: the
            // header template address and a sliced payload pointer.
            const auto &prev =
                state.txInfo[(seq - 1) % state.config.txSlots];
            info.hostHdrAddr = prev.hostHdrAddr;
            info.hdrLen = prev.hdrLen;
            info.hostPayAddr = prev.hostPayAddr + prev.payLen;
            info.payLen = prev.payLen;
            rec.tag(FuncTag::FetchSendBd);
            aluH(rec, cal::tsoSegmentAlu);
        }
        state.txInfo[seq % state.config.txSlots] = info;
        if (faults) {
            // Roll per-frame poisoning at claim time; the commit step
            // consults the mark at MAC-handoff time (a dropped payload
            // DMA can also set it later -- see onFault below).
            state.txPoison[seq % state.config.txSlots] =
                faults->rollTxPoison(txVfOf ? txVfOf(seq) : 0) ? 1 : 0;
        }

        // Build the frame: metadata writes, DMA programming.
        rec.tag(FuncTag::SendFrame);
        Addr info_at = state.txInfoBase +
            (seq % state.config.txSlots) * FwState::infoBytes;
        aluH(rec, cal::sendFrameAlu);
        for (unsigned i = 0; i < cal::sendFrameInfoStores; ++i)
            rec.store(info_at + 4 * i);
        touch(rec, info_at, cal::sendFrameTouch);
        rec.store(state.txCmdRingBase +
                  (seq % state.config.txSlots) * 4);

        Addr slot = txBufSdram +
            (seq % state.config.txSlots) * state.config.slotBytes;
        rec.action([this, info, slot, seq] {
            state.dmaReadReserved -= 2;
            // Payload lands right after the 42-byte header --
            // misaligned in SDRAM, exactly the paper's inefficiency.
            // Posted atomically so even an idle engine sees the pair
            // and can fuse it into one SDRAM burst-pair request.
            // If either transfer is abandoned under fault injection
            // the SDRAM slot holds stale bytes; poison the frame so
            // the commit step skips it instead of transmitting junk.
            auto poison = [this, seq] {
                state.txPoison[seq % state.config.txSlots] = 1;
            };
            unsigned vf = txVfOf ? txVfOf(seq) : 0;
            bool ok = dmaRead.pushPair(
                DmaCommand{DmaCommand::Kind::HostToSdram,
                           info.hostHdrAddr, slot, info.hdrLen, 0,
                           nullptr, poison, vf},
                DmaCommand{DmaCommand::Kind::HostToSdram,
                           info.hostPayAddr, slot + info.hdrLen,
                           info.payLen, info.payLen, [this, seq] {
                               state.txCmdsCompleted++;
                               hwCounterWrite(FwState::CtrTxCmdsCompleted,
                                              state.txCmdsCompleted,
                                              ids.dmaRead);
                           },
                           poison, vf});
            panic_if(!ok, "[fw send] dma read FIFO overflow despite "
                     "reservation @tick ", dmaRead.curTick());
            state.txCmdSeq[state.txCmdsPushed % state.config.txSlots] =
                seq;
            ++state.txCmdsPushed;
        });
    }
    return true;
}

bool
FwTasks::commitPossible(Addr flag_base, std::uint64_t ptr) const
{
    // A commit can only make progress if the frame *at* the commit
    // pointer is done (the consecutive requirement); peeking the flag
    // word is what the firmware's dispatch check does anyway.
    Addr word = state.flagWordAddr(flag_base, ptr);
    unsigned bit = state.flagBit(ptr) % 32;
    return (state.spad.storage().loadWord(word) >> bit) & 1;
}

bool
FwTasks::processTxDmaReady() const
{
    if (dist(state.txCmdsCompleted, state.txDmaProcessed) > 0)
        return true;
    if (state.txCommitBusy)
        return false;
    // Enqueue-only work: ordered frames waiting for MAC FIFO space.
    // Dispatch only once a small batch fits (the FIFO is deep enough
    // that batching cannot underrun the wire).
    std::uint64_t enq_pending = dist(state.txOrderedReady,
                                     state.txMacEnqueued);
    if (enq_pending > 0) {
        std::size_t used = macTx.depth() + state.macTxReserved;
        std::size_t cap = macTx.capacity();
        unsigned space = used < cap ? static_cast<unsigned>(cap - used)
                                    : 0;
        if (space >= std::min<std::uint64_t>(enq_pending,
                                             cal::enqueueBatch)) {
            if (!commitPeek)
                return true;
            // Don't dispatch enqueue-only work the MAC rate gate
            // would immediately stall on (the head frame's VF bucket
            // is dry); poisoned heads always pass, being skipped
            // uncharged.
            std::uint64_t seq = state.txMacEnqueued;
            if (faults && state.txPoison[seq % state.config.txSlots])
                return true;
            const auto &inf = state.txInfo[seq % state.config.txSlots];
            if (commitPeek(seq, inf.hdrLen + inf.payLen))
                return true;
        }
    }
    // Scan-only work: flagged frames whose order is not yet resolved.
    if (dist(state.txDmaProcessed, state.txOrderedReady) == 0)
        return false;
    // The RMW firmware's update instruction checks readiness and
    // commits in one step, so it only dispatches when the frame at the
    // commit pointer is actually done.  The software-only firmware
    // cannot tell without taking the order lock and scanning -- those
    // futile synchronized scans are part of its ordering overhead.
    return !state.config.rmwEnhanced ||
           commitPossible(state.txFlagBase, state.txOrderedReady);
}

bool
FwTasks::tryProcessTxDma(OpRecorder &rec)
{
    if (!processTxDmaReady())
        return false;
    bool sw = !state.config.rmwEnhanced && !state.config.idealMode;
    // In the software-only strategy the status flags are guarded by a
    // dedicated lock; bail out (spin) before claiming work if busy.
    std::uint64_t n = std::min<std::uint64_t>(
        dist(state.txCmdsCompleted, state.txDmaProcessed),
        state.config.maxCommitPerPass);
    if (sw && n > 0 &&
        state.lockHeld[static_cast<unsigned>(FwLock::TxFlag)]) {
        lockOrSpin(rec, FwLock::TxFlag, FuncTag::SendLock);
        return true; // spin recorded
    }
    if (!lockOrSpin(rec, FwLock::SendDispatch, FuncTag::SendLock))
        return true;

    ++state.invProcessTxDma;
    std::uint64_t first = state.txDmaProcessed;
    state.txDmaProcessed += n;
    bool commit = !state.txCommitBusy;
    if (commit)
        state.txCommitBusy = true;
    rec.tag(FuncTag::SendDispatch);
    rec.store(state.counterAddr(FwState::CtrTxDmaProcessed));
    unlock(rec, FwLock::SendDispatch, FuncTag::SendLock);
    aluH(rec, cal::claimAlu + cal::eventBuildAlu);
    for (unsigned i = 1; i < cal::eventBuildStores; ++i)
        rec.store(state.counterAddr(FwState::CtrTxDmaProcessed) + 4 * i);
    queueStatusUpdate(rec, FuncTag::SendDispatch,
                      state.counterAddr(FwState::CtrTxDmaProcessed));
    eventPerFrame(rec, FuncTag::SendDispatch, first, n, true);

    // Mark each completed DMA's frame as ready for the MAC.
    if (n > 0 && sw && !lockOrSpin(rec, FwLock::TxFlag,
                                   FuncTag::SendLock)) {
        // Should not happen (checked above), but handle by undoing.
        state.txDmaProcessed = first;
        if (commit)
            state.txCommitBusy = false;
        return true;
    }
    for (std::uint64_t i = first; i < first + n; ++i) {
        rec.tag(FuncTag::SendDispatch);
        Addr ring_at = state.txCmdRingBase +
            (i % state.config.txSlots) * 4;
        rec.load(ring_at);
        std::uint64_t seq = state.txCmdSeq[i % state.config.txSlots];
        setStatusFlag(rec, state.txFlagBase, seq, FuncTag::SendDispatch);
    }
    if (n > 0 && sw)
        unlock(rec, FwLock::TxFlag, FuncTag::SendLock);

    if (!commit)
        return true;

    // Commit stage 1: scan/clear consecutive status flags, advancing
    // the ordered pointer (the paper's hardware pointer update).
    if (dist(state.txDmaProcessed, state.txOrderedReady) > 0) {
        if (sw && !lockOrSpin(rec, FwLock::TxOrder, FuncTag::SendLock)) {
            state.txCommitBusy = false;
            return true;
        }
        unsigned scanned = commitScan(rec, state.txFlagBase,
                                      state.txOrderedReady,
                                      state.config.maxCommitPerPass,
                                      FuncTag::SendDispatch);
        state.txOrderedReady += scanned;
        rec.tag(FuncTag::SendDispatch);
        rec.store(state.counterAddr(FwState::CtrTxMacEnqueued));
        if (sw)
            unlock(rec, FwLock::TxOrder, FuncTag::SendLock);
    }

    // Commit stage 2: hand ordered frames to the MAC as space allows.
    unsigned mac_space = 0;
    {
        std::size_t used = macTx.depth() + state.macTxReserved;
        std::size_t cap = macTx.capacity();
        mac_space = used < cap ? static_cast<unsigned>(cap - used) : 0;
    }
    unsigned count = static_cast<unsigned>(std::min<std::uint64_t>(
        {dist(state.txOrderedReady, state.txMacEnqueued), mac_space,
         state.config.maxCommitPerPass}));
    ++state.invTxCommitPasses;
    std::uint64_t base = state.txMacEnqueued;
    unsigned enq = 0;
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t seq = base + i;
        // MAC-commit rate gate (vnic runs): charge the owning VF's
        // enforcement bucket before handing the frame to the MAC.
        // The pipeline is strictly in order, so a dry bucket stalls
        // the whole commit here -- that is the isolation contract;
        // cores re-poll and resume with the lazy refill.  Poisoned
        // frames never touch the wire and pass uncharged.
        if (commitAdmit &&
            !(faults && state.txPoison[seq % state.config.txSlots])) {
            const auto &inf = state.txInfo[seq % state.config.txSlots];
            if (!commitAdmit(seq, inf.hdrLen + inf.payLen))
                break;
        }
        rec.tag(FuncTag::SendDispatch);
        Addr info_at = state.txInfoBase +
            (seq % state.config.txSlots) * FwState::infoBytes;
        bool rmw_mode = state.config.rmwEnhanced;
        unsigned cl = rmw_mode ? cal::rmwCommitPerFrameLoads
                               : cal::commitPerFrameLoads;
        unsigned cs = rmw_mode ? cal::rmwCommitPerFrameStores
                               : cal::commitPerFrameStores;
        unsigned ca = rmw_mode ? cal::rmwCommitPerFrameAlu
                               : cal::commitPerFrameAlu;
        for (unsigned k = 0; k < cl; ++k)
            rec.load(info_at + 4 * k);
        for (unsigned k = 0; k < cs; ++k)
            rec.store(info_at + 16 + 4 * k);
        aluH(rec, ca);

        const auto &info = state.txInfo[seq % state.config.txSlots];
        Addr slot = txBufSdram +
            (seq % state.config.txSlots) * state.config.slotBytes;
        unsigned len = info.hdrLen + info.payLen;
        ++state.macTxReserved;
        rec.action([this, slot, len, seq] {
            --state.macTxReserved;
            // Poisoned frames are retired through a skip command: it
            // flows through both MAC stages (so every other frame's
            // completion ordering is untouched) but never touches the
            // SDRAM bus or the wire.
            bool skip = faults &&
                state.txPoison[seq % state.config.txSlots];
            if (skip) {
                faults->notePoisonSkip(txVfOf ? txVfOf(seq) : 0);
                if (onPoisonSkip)
                    onPoisonSkip(seq);
            }
            bool ok = macTx.push(MacTx::Command{
                slot, len,
                [this] {
                    ++state.macTxDone;
                    hwCounterWrite(FwState::CtrMacTxDone,
                                   state.macTxDone, ids.macTx);
                },
                skip});
            panic_if(!ok, "[fw commit] mac tx FIFO overflow despite "
                     "reservation @tick ", dmaRead.curTick());
        });
        ++enq;
    }
    state.invTxCommitted += enq;
    state.txMacEnqueued += enq;
    rec.tag(FuncTag::SendDispatch);
    rec.store(state.counterAddr(FwState::CtrTxMacEnqueued));
    if (sw)
        unlock(rec, FwLock::TxOrder, FuncTag::SendLock);
    rec.action([this] { state.txCommitBusy = false; });
    return true;
}

bool
FwTasks::processTxCompleteReady() const
{
    return dist(state.macTxDone, state.txComplProcessed) > 0 &&
           !dmaWrite.full();
}

bool
FwTasks::tryProcessTxComplete(OpRecorder &rec)
{
    if (!processTxCompleteReady())
        return false;
    if (!lockOrSpin(rec, FwLock::SendDispatch, FuncTag::SendLock))
        return true;

    ++state.invProcessTxComplete;
    std::uint64_t n = std::min<std::uint64_t>(
        dist(state.macTxDone, state.txComplProcessed),
        state.config.maxCommitPerPass);
    state.txComplProcessed += n;
    state.txFreedFrames = state.txComplProcessed;
    std::uint64_t upto = state.txComplProcessed;
    ++state.dmaWriteReserved;
    rec.tag(FuncTag::SendDispatch);
    rec.store(state.counterAddr(FwState::CtrTxComplProcessed));
    unlock(rec, FwLock::SendDispatch, FuncTag::SendLock);
    aluH(rec, cal::claimAlu);
    queueStatusUpdate(rec, FuncTag::SendDispatch,
                      state.counterAddr(FwState::CtrTxComplProcessed));

    rec.tag(FuncTag::SendFrame);
    if (rec.live()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            aluH(rec, cal::txCompletePerFrameAlu);
            // Reads the frame state the Send Frame stage wrote, usually
            // from a different core (migratory sharing).
            Addr info_at = state.txInfoBase +
                ((upto - n + i) % state.config.txSlots) *
                FwState::infoBytes;
            for (unsigned k = 0; k < cal::txCompletePerFrameLoads; ++k)
                rec.load(info_at + 16 * k);
        }
        // One batched consumed-index writeback for the whole bundle.
        aluH(rec, cal::txCompleteWritebackAlu);
        for (unsigned k = 0; k < cal::txCompleteWritebackStores; ++k)
            rec.store(state.counterAddr(FwState::CtrTxComplProcessed));
    }
    state.spad.storage().storeWord(
        state.counterAddr(FwState::CtrTxComplProcessed),
        static_cast<std::uint32_t>(upto));
    rec.action([this, upto] {
        --state.dmaWriteReserved;
        bool ok = dmaWrite.push(DmaCommand{
            DmaCommand::Kind::SpadToHost,
            driver.txConsumedMailbox(),
            state.counterAddr(FwState::CtrTxComplProcessed), 4, 0,
            [this, upto] { driver.txConsumedUpTo(upto); }});
        panic_if(!ok, "[fw tx-complete] dma write FIFO overflow despite "
                 "reservation @tick ", dmaWrite.curTick());
    });
    return true;
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

bool
FwTasks::fetchRecvBdReady() const
{
    std::uint64_t buffered = dist(state.rxBdArrivedBds,
                                  state.rxBdConsumedBds) +
        dist(state.rxBdFetchIssuedBds, state.rxBdArrivedBds);
    if (buffered >= state.config.rxBdLowWater)
        return false;
    if (dist(state.hostRecvBdsPosted, state.rxBdFetchIssuedBds) == 0)
        return false;
    if (dmaRead.depth() + state.dmaReadReserved + 1 >= dmaRead.capacity())
        return false;
    std::uint64_t unconsumed = dist(state.rxBdFetchIssuedBds,
                                    state.rxBdConsumedBds);
    return unconsumed + state.config.recvBdBatch <=
           state.config.bdCacheBds;
}

bool
FwTasks::tryFetchRecvBd(OpRecorder &rec)
{
    if (!fetchRecvBdReady())
        return false;
    if (!lockOrSpin(rec, FwLock::RecvDispatch, FuncTag::RecvLock))
        return true;

    ++state.invFetchRecvBd;
    std::uint64_t issued = state.rxBdFetchIssuedBds;
    std::uint64_t avail = dist(state.hostRecvBdsPosted, issued);
    unsigned ring_bds = driver.recvRingCapacityBds();
    unsigned cache = state.config.bdCacheBds;
    std::uint64_t batch = std::min<std::uint64_t>(
        {avail, state.config.recvBdBatch,
         ring_bds - (issued % ring_bds), cache - (issued % cache)});

    rec.tag(FuncTag::FetchRecvBd);
    aluH(rec, cal::recvBdBatchAlu);
    for (unsigned i = 0; i < cal::recvBdBatchLoads; ++i)
        rec.load(state.counterAddr(FwState::CtrHostRecvBds) + 4 * i);
    for (unsigned i = 0; i < cal::recvBdBatchStores; ++i)
        rec.store(state.recvBdCache + 4 * i);

    Addr host_at = driver.recvBdRingBase() +
        (issued % ring_bds) * BufferDesc::bytes;
    Addr local_at = state.recvBdCache + (issued % cache) *
        BufferDesc::bytes;
    state.rxBdFetchIssuedBds += batch;
    ++state.dmaReadReserved;
    rec.action([this, host_at, local_at, batch] {
        --state.dmaReadReserved;
        bool ok = dmaRead.push(DmaCommand{
            DmaCommand::Kind::HostToSpad, host_at, local_at,
            batch * BufferDesc::bytes, 0,
            [this, batch] {
                state.rxBdArrivedBds += batch;
                hwCounterWrite(FwState::CtrRxBdArrived,
                               state.rxBdArrivedBds, ids.dmaRead);
            }});
        panic_if(!ok, "[fw recv-bd] dma read FIFO overflow despite "
                 "reservation @tick ", dmaRead.curTick());
    });
    unlock(rec, FwLock::RecvDispatch, FuncTag::RecvLock);
    return true;
}

bool
FwTasks::recvFrameReady() const
{
    if (dist(state.macRxStored, state.rxClaimedFrames) == 0)
        return false;
    if (state.rxBdAvail() == 0)
        return false;
    if (dmaWrite.depth() + state.dmaWriteReserved +
        state.config.bundleFrames >= dmaWrite.capacity())
        return false;
    return dist(state.rxCmdsPushed, state.rxDmaProcessed) +
           state.config.bundleFrames < state.config.rxSlots;
}

bool
FwTasks::tryRecvFrame(OpRecorder &rec)
{
    if (!recvFrameReady())
        return false;
    // The receive-BD pop lock: the paper's troublesome receive-path
    // lock.  Taken before the claim so a spinning core backs off
    // without holding anything.
    if (!lockOrSpin(rec, FwLock::RxBdPop, FuncTag::RecvLock))
        return true;
    if (!lockOrSpin(rec, FwLock::RecvDispatch, FuncTag::RecvLock)) {
        undoLock(FwLock::RxBdPop);
        rec.store(state.lockAddr(FwLock::RxBdPop));
        return true;
    }

    ++state.invRecvFrame;
    std::uint64_t n = std::min<std::uint64_t>(
        {dist(state.macRxStored, state.rxClaimedFrames),
         static_cast<std::uint64_t>(state.rxBdAvail()),
         state.config.bundleFrames});
    std::uint64_t first = state.rxClaimedFrames;
    std::uint64_t first_bd = state.rxBdConsumedBds;
    state.rxClaimedFrames += n;
    state.rxBdConsumedBds += n;
    state.dmaWriteReserved += static_cast<unsigned>(n);
    rec.tag(FuncTag::RecvDispatch);
    rec.store(state.counterAddr(FwState::CtrRxClaimed));
    unlock(rec, FwLock::RecvDispatch, FuncTag::RecvLock);
    aluH(rec, cal::claimAlu + cal::eventBuildAlu);
    for (unsigned i = 1; i < cal::eventBuildStores; ++i)
        rec.store(state.counterAddr(FwState::CtrRxClaimed) + 4 * i);
    queueStatusUpdate(rec, FuncTag::RecvDispatch,
                      state.counterAddr(FwState::CtrRxClaimed));
    eventPerFrame(rec, FuncTag::RecvDispatch, first, n, false);

    // Receive-side dispatch extras: hardware descriptor ring walk,
    // return-ring management, notification coalescing.
    rec.tag(FuncTag::RecvDispatch);
    if (rec.live()) {
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr at = state.rxInfoBase +
                ((first + i) % state.config.rxSlots) * FwState::infoBytes;
            for (unsigned k = 0; k < cal::recvDispatchExtraLoads; ++k)
                rec.load(at + 16 * k + 256);
            aluH(rec, cal::recvDispatchExtraAlu);
            for (unsigned k = 0; k < cal::recvDispatchExtraStores; ++k)
                rec.store(at + 16 * k + 260);
        }
    }

    auto &storage = state.spad.storage();
    unsigned cache = state.config.bdCacheBds;
    // Pop the frames' receive BDs while holding the pop lock.
    std::vector<std::uint64_t> bufs(n);
    rec.tag(FuncTag::FetchRecvBd);
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr bd_at = state.recvBdCache +
            ((first_bd + i) % cache) * BufferDesc::bytes;
        std::uint64_t lo = storage.loadWord(bd_at);
        std::uint64_t hi = storage.loadWord(bd_at + 4);
        bufs[i] = lo | (hi << 32);
        for (unsigned k = 0; k < 1 + cal::recvBdParseLoads; ++k)
            rec.load(bd_at + 4 * k);
        aluH(rec, cal::recvBdParseAlu);
        // Free-list bookkeeping while the pop lock is held.
        rec.tag(FuncTag::RecvFrame);
        for (unsigned k = 0; k < cal::recvBdPopLoads; ++k)
            rec.load(bd_at + 4 * k);
        aluH(rec, cal::recvBdPopAlu);
        for (unsigned k = 0; k < cal::recvBdPopStores; ++k)
            rec.store(bd_at + 12);
        rec.tag(FuncTag::FetchRecvBd);
    }
    if (state.config.rmwEnhanced && rec.live()) {
        // Contention retries on the remaining receive-path lock (see
        // calibration.hh).
        rec.tag(FuncTag::RecvLock);
        for (std::uint64_t i = 0; i < n; ++i) {
            aluH(rec, cal::rmwRxPopRetryAlu);
            for (unsigned k = 0; k < cal::rmwRxPopRetryRmws; ++k)
                rec.rmw(state.lockAddr(FwLock::RxBdPop));
        }
    }
    rec.store(state.counterAddr(FwState::CtrRxBdConsumed));
    unlock(rec, FwLock::RxBdPop, FuncTag::RecvLock);

    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t seq = first + i;
        unsigned slot_idx = seq % state.config.rxSlots;
        auto &info = state.rxInfo[slot_idx];
        info.hostBufAddr = bufs[i];

        rec.tag(FuncTag::RecvFrame);
        // Read the MAC's hardware descriptor (sdram address + length).
        Addr hw_at = state.rxHwDescBase + slot_idx * 8;
        rec.load(hw_at);
        rec.load(hw_at + 4);
        aluH(rec, cal::recvFrameAlu);
        Addr info_at = state.rxInfoBase +
            static_cast<Addr>(slot_idx) * FwState::infoBytes;
        touch(rec, info_at, cal::recvFrameTouch);

        // Completion descriptor (real bytes: the write assist DMAs
        // them to the host return ring later).
        Addr compl_at = state.rxComplBase + slot_idx * 16;
        storage.storeWord(compl_at,
                          static_cast<std::uint32_t>(info.hostBufAddr));
        storage.storeWord(compl_at + 4,
                          static_cast<std::uint32_t>(
                              info.hostBufAddr >> 32));
        storage.storeWord(compl_at + 8, info.len);
        storage.storeWord(compl_at + 12,
                          static_cast<std::uint32_t>(seq));
        for (unsigned k = 0; k < cal::recvFrameComplStores; ++k)
            rec.store(compl_at + 4 * k);
        rec.store(state.rxCmdRingBase + slot_idx * 4);

        rec.action([this, seq, slot_idx] {
            const auto &fi = state.rxInfo[slot_idx];
            state.rxCmdSeq[state.rxCmdsPushed % state.config.rxSlots] =
                seq;
            ++state.rxCmdsPushed;
            bool ok = dmaWrite.push(DmaCommand{
                DmaCommand::Kind::SdramToHost, fi.hostBufAddr,
                fi.sdramAddr, fi.len,
                fi.len > txHeaderBytes ? fi.len - txHeaderBytes : 0,
                [this] {
                    --state.dmaWriteReserved;
                    ++state.rxCmdsCompleted;
                    hwCounterWrite(FwState::CtrRxCmdsCompleted,
                                   state.rxCmdsCompleted, ids.dmaWrite);
                },
                [this, slot_idx] {
                    // Content DMA abandoned: the host buffer holds
                    // stale bytes.  Zero the completion descriptor's
                    // length word so the driver recycles the buffer
                    // instead of delivering junk; ordering is kept
                    // because the completion still posts.
                    state.spad.storage().storeWord(
                        state.rxComplBase + slot_idx * 16 + 8, 0);
                },
                rxVfOf ? rxVfOf(seq) : 0});
            panic_if(!ok, "[fw recv] dma write FIFO overflow despite "
                     "reservation @tick ", dmaWrite.curTick());
        });
    }
    return true;
}

bool
FwTasks::processRxDmaReady() const
{
    if (dist(state.rxCmdsCompleted, state.rxDmaProcessed) > 0)
        return true;
    if (state.rxCommitBusy)
        return false;
    std::uint64_t del_pending = dist(state.rxOrderedReady,
                                     state.rxCommitted);
    if (del_pending > 0) {
        std::size_t used = dmaWrite.depth() + state.dmaWriteReserved;
        std::size_t cap = dmaWrite.capacity();
        unsigned space = used < cap ? static_cast<unsigned>(cap - used)
                                    : 0;
        if (space >= std::min<std::uint64_t>(del_pending,
                                             cal::enqueueBatch))
            return true;
    }
    if (dist(state.rxDmaProcessed, state.rxOrderedReady) == 0)
        return false;
    // See processTxDmaReady: only the RMW firmware can check
    // commit-readiness without the lock-and-scan sequence.
    return !state.config.rmwEnhanced ||
           commitPossible(state.rxFlagBase, state.rxOrderedReady);
}

bool
FwTasks::tryProcessRxDma(OpRecorder &rec)
{
    if (!processRxDmaReady())
        return false;
    bool sw = !state.config.rmwEnhanced && !state.config.idealMode;
    std::uint64_t n = std::min<std::uint64_t>(
        dist(state.rxCmdsCompleted, state.rxDmaProcessed),
        state.config.maxCommitPerPass);
    if (sw && n > 0 &&
        state.lockHeld[static_cast<unsigned>(FwLock::RxFlag)]) {
        lockOrSpin(rec, FwLock::RxFlag, FuncTag::RecvLock);
        return true;
    }
    if (!lockOrSpin(rec, FwLock::RecvDispatch, FuncTag::RecvLock))
        return true;

    ++state.invProcessRxDma;
    std::uint64_t first = state.rxDmaProcessed;
    state.rxDmaProcessed += n;
    bool commit = !state.rxCommitBusy;
    if (commit)
        state.rxCommitBusy = true;
    rec.tag(FuncTag::RecvDispatch);
    rec.store(state.counterAddr(FwState::CtrRxDmaProcessed));
    unlock(rec, FwLock::RecvDispatch, FuncTag::RecvLock);
    aluH(rec, cal::claimAlu + cal::eventBuildAlu);
    for (unsigned i = 1; i < cal::eventBuildStores; ++i)
        rec.store(state.counterAddr(FwState::CtrRxDmaProcessed) + 4 * i);
    queueStatusUpdate(rec, FuncTag::RecvDispatch,
                      state.counterAddr(FwState::CtrRxDmaProcessed));
    eventPerFrame(rec, FuncTag::RecvDispatch, first, n, false);

    if (n > 0 && sw && !lockOrSpin(rec, FwLock::RxFlag,
                                   FuncTag::RecvLock)) {
        state.rxDmaProcessed = first;
        if (commit)
            state.rxCommitBusy = false;
        return true;
    }
    for (std::uint64_t i = first; i < first + n; ++i) {
        rec.tag(FuncTag::RecvDispatch);
        rec.load(state.rxCmdRingBase + (i % state.config.rxSlots) * 4);
        std::uint64_t seq = state.rxCmdSeq[i % state.config.rxSlots];
        setStatusFlag(rec, state.rxFlagBase, seq, FuncTag::RecvDispatch);
    }
    if (n > 0 && sw)
        unlock(rec, FwLock::RxFlag, FuncTag::RecvLock);

    if (!commit)
        return true;

    if (dist(state.rxDmaProcessed, state.rxOrderedReady) > 0) {
        if (sw && !lockOrSpin(rec, FwLock::RxOrder, FuncTag::RecvLock)) {
            state.rxCommitBusy = false;
            return true;
        }
        unsigned scanned = commitScan(rec, state.rxFlagBase,
                                      state.rxOrderedReady,
                                      state.config.maxCommitPerPass,
                                      FuncTag::RecvDispatch);
        state.rxOrderedReady += scanned;
        rec.tag(FuncTag::RecvDispatch);
        rec.store(state.counterAddr(FwState::CtrRxCommitted));
        if (sw)
            unlock(rec, FwLock::RxOrder, FuncTag::RecvLock);
    }

    unsigned space = 0;
    {
        std::size_t used = dmaWrite.depth() + state.dmaWriteReserved;
        std::size_t cap = dmaWrite.capacity();
        space = used < cap ? static_cast<unsigned>(cap - used) : 0;
    }
    unsigned count = static_cast<unsigned>(std::min<std::uint64_t>(
        {dist(state.rxOrderedReady, state.rxCommitted), space,
         state.config.maxCommitPerPass}));
    ++state.invRxCommitPasses;
    state.invRxCommitted += count;
    std::uint64_t base = state.rxCommitted;
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t seq = base + i;
        unsigned slot_idx = seq % state.config.rxSlots;
        rec.tag(FuncTag::RecvDispatch);
        aluH(rec, state.config.rmwEnhanced ? cal::rmwCommitPerFrameAlu
                                           : cal::commitPerFrameAlu);
        Addr compl_at = state.rxComplBase + slot_idx * 16;
        rec.load(compl_at);
        rec.store(state.counterAddr(FwState::CtrRxCommitted));

        Addr host_at = driver.recvReturnRingBase() +
            (seq % driver.recvRingCapacityBds()) * BufferDesc::bytes;
        ++state.dmaWriteReserved;
        rec.action([this, compl_at, host_at] {
            --state.dmaWriteReserved;
            bool ok = dmaWrite.push(DmaCommand{
                DmaCommand::Kind::SpadToHost, host_at, compl_at, 16, 0,
                [this, host_at] {
                    // "Interrupt": the driver reads the completion
                    // descriptor from its return ring.
                    std::uint32_t w[4];
                    host.read(host_at, w, 16);
                    Addr buf = static_cast<Addr>(w[0]) |
                        (static_cast<Addr>(w[1]) << 32);
                    driver.rxCompletion(buf, w[2]);
                }});
            panic_if(!ok, "[fw rx-commit] dma write FIFO overflow "
                     "despite reservation @tick ", dmaWrite.curTick());
        });
    }
    state.rxCommitted += count;
    state.rxSlotsFreed = state.rxCommitted;
    if (sw)
        unlock(rec, FwLock::RxOrder, FuncTag::RecvLock);
    rec.action([this] { state.rxCommitBusy = false; });
    return true;
}

// ---------------------------------------------------------------------
// Op-cache path keys (DESIGN.md §14)
// ---------------------------------------------------------------------
//
// Each pathKeyX() mirrors its tryX() twin, folding -- in emission
// order -- every branch input and address-generating value the handler
// consumes: lock outcomes, bundle sizes, ring offsets, commit-stage
// branches, flag-word contents around the commit pointer.  Per-run
// constants (calibration values, layout addresses, ring capacities,
// rmwEnhanced / idealMode) are deliberately omitted: the cache lives
// for a single run.  Keep these functions in lockstep with the
// handlers; `opCacheVerify` and the cache-on/off equivalence suite
// exist to catch drift.

namespace {

/** Distinct key spaces per handler. */
enum PathSalt : std::uint64_t
{
    SaltFetchSendBd = 1,
    SaltSendFrame,
    SaltTxDma,
    SaltTxComplete,
    SaltFetchRecvBd,
    SaltRecvFrame,
    SaltRxDma,
};

inline bool
held(const FwState &st, FwLock l)
{
    return st.lockHeld[static_cast<unsigned>(l)];
}

} // namespace

FwTasks::PathKey
FwTasks::pathKeyFetchSendBd() const
{
    // Everything past the lock is static: the batch size and ring
    // offsets only appear in the action closure and functional state.
    std::uint64_t h = OpCache::seed(SaltFetchSendBd);
    h = OpCache::mix(h, held(state, FwLock::SendDispatch));
    return {h, true};
}

FwTasks::PathKey
FwTasks::pathKeySendFrame() const
{
    std::uint64_t h = OpCache::seed(SaltSendFrame);
    bool spin = held(state, FwLock::SendDispatch);
    h = OpCache::mix(h, spin);
    if (spin)
        return {h, true};
    std::uint64_t avail = dist(state.txBdArrivedFrames(),
                               state.txClaimedFrames);
    std::uint64_t slots = state.config.txSlots -
        dist(state.txClaimedFrames, state.txFreedFrames);
    std::uint64_t n = std::min<std::uint64_t>(
        {avail, slots, state.config.bundleFrames});
    std::uint64_t first = state.txClaimedFrames;
    unsigned cache = state.config.bdCacheBds;
    unsigned segs = state.config.tsoSegments;
    h = OpCache::mix(h, n);
    for (std::uint64_t seq = first; seq < first + n; ++seq) {
        h = OpCache::mix(h, seq % state.config.txSlots);
        unsigned seg = static_cast<unsigned>(seq % segs);
        h = OpCache::mix(h, seg);
        if (seg == 0)
            h = OpCache::mix(h, (seq / segs * 2) % cache);
    }
    return {h, true};
}

FwTasks::PathKey
FwTasks::pathKeyProcessTxComplete() const
{
    std::uint64_t h = OpCache::seed(SaltTxComplete);
    bool spin = held(state, FwLock::SendDispatch);
    h = OpCache::mix(h, spin);
    if (spin)
        return {h, true};
    std::uint64_t n = std::min<std::uint64_t>(
        dist(state.macTxDone, state.txComplProcessed),
        state.config.maxCommitPerPass);
    h = OpCache::mix(h, n);
    // Per-frame info loads walk consecutive slots from the old pointer.
    h = OpCache::mix(h, state.txComplProcessed % state.config.txSlots);
    return {h, true};
}

FwTasks::PathKey
FwTasks::pathKeyFetchRecvBd() const
{
    std::uint64_t h = OpCache::seed(SaltFetchRecvBd);
    h = OpCache::mix(h, held(state, FwLock::RecvDispatch));
    return {h, true};
}

FwTasks::PathKey
FwTasks::pathKeyRecvFrame() const
{
    std::uint64_t h = OpCache::seed(SaltRecvFrame);
    bool spin_pop = held(state, FwLock::RxBdPop);
    h = OpCache::mix(h, spin_pop);
    if (spin_pop)
        return {h, true};
    bool spin_disp = held(state, FwLock::RecvDispatch);
    h = OpCache::mix(h, spin_disp);
    if (spin_disp)
        return {h, true};
    std::uint64_t n = std::min<std::uint64_t>(
        {dist(state.macRxStored, state.rxClaimedFrames),
         static_cast<std::uint64_t>(state.rxBdAvail()),
         state.config.bundleFrames});
    h = OpCache::mix(h, n);
    // All per-frame addresses are linear in these two ring offsets.
    h = OpCache::mix(h, state.rxClaimedFrames % state.config.rxSlots);
    h = OpCache::mix(h, state.rxBdConsumedBds % state.config.bdCacheBds);
    return {h, true};
}

unsigned
FwTasks::previewCommitScan(Addr flag_base, std::uint64_t from,
                           unsigned max, std::uint64_t &h,
                           const Addr *pend_word,
                           const std::uint32_t *pend_mask,
                           unsigned n_pend) const
{
    const auto &storage = state.spad.storage();
    // Local word overlay: seeded lazily from the scratchpad plus the
    // pending bits, then mutated by simulated clears.  A scan touches
    // at most ~max/32 + 2 words; the cap is generous.
    constexpr unsigned ov_cap = 48;
    Addr ov_word[ov_cap];
    std::uint32_t ov_val[ov_cap];
    unsigned ov_n = 0;
    auto wordVal = [&](Addr w) -> std::uint32_t & {
        for (unsigned k = 0; k < ov_n; ++k)
            if (ov_word[k] == w)
                return ov_val[k];
        panic_if(ov_n >= ov_cap,
                 "[opcache] flag-preview overlay overflow");
        std::uint32_t v = storage.loadWord(w);
        for (unsigned k = 0; k < n_pend; ++k)
            if (pend_word[k] == w)
                v |= pend_mask[k];
        ov_word[ov_n] = w;
        ov_val[ov_n] = v;
        return ov_val[ov_n++];
    };

    unsigned committed = 0;
    if (state.config.rmwEnhanced) {
        // Mirrors commitScan's update-RMW loop: each pass clears the
        // whole consecutive run in its word (not bounded by max).
        while (committed < max) {
            std::uint64_t seq = from + committed;
            Addr word = state.flagWordAddr(flag_base, seq);
            unsigned bit = state.flagBit(seq) % 32;
            std::uint32_t &v = wordVal(word);
            unsigned n = 0;
            while (bit + n < 32 && (v & (1u << (bit + n)))) {
                v &= ~(1u << (bit + n));
                ++n;
            }
            h = OpCache::mix(h, word);
            h = OpCache::mix(h, n);
            committed += n;
            if (bit + n < 32)
                break;
        }
    } else {
        while (committed < max) {
            std::uint64_t seq = from + committed;
            Addr word = state.flagWordAddr(flag_base, seq);
            unsigned bit = state.flagBit(seq) % 32;
            std::uint32_t &v = wordVal(word);
            unsigned cleared = 0;
            while (bit + cleared < 32 && committed + cleared < max &&
                   (v & (1u << (bit + cleared)))) {
                v &= ~(1u << (bit + cleared));
                ++cleared;
            }
            h = OpCache::mix(h, word);
            h = OpCache::mix(h, cleared);
            committed += cleared;
            if (bit + cleared < 32 || cleared == 0)
                break;
        }
    }
    return committed;
}

FwTasks::PathKey
FwTasks::pathKeyProcessDma(bool tx) const
{
    if (tx && commitAdmit) {
        // The vnic MAC-commit rate gate charges per-VF buckets inside
        // the commit loop; its admit/stall decisions cannot be
        // previewed without charging.  Record this path live.
        return {0, false};
    }
    std::uint64_t h = OpCache::seed(tx ? SaltTxDma : SaltRxDma);
    const bool sw = !state.config.rmwEnhanced && !state.config.idealMode;
    const FwLock flag_lock = tx ? FwLock::TxFlag : FwLock::RxFlag;
    const FwLock disp_lock = tx ? FwLock::SendDispatch
                                : FwLock::RecvDispatch;
    const FwLock order_lock = tx ? FwLock::TxOrder : FwLock::RxOrder;
    const unsigned slots = tx ? state.config.txSlots
                              : state.config.rxSlots;
    const Addr flag_base = tx ? state.txFlagBase : state.rxFlagBase;
    const std::uint64_t completed = tx ? state.txCmdsCompleted
                                       : state.rxCmdsCompleted;
    const std::uint64_t processed = tx ? state.txDmaProcessed
                                       : state.rxDmaProcessed;
    const std::uint64_t ordered_now = tx ? state.txOrderedReady
                                         : state.rxOrderedReady;
    const std::uint64_t committed_ptr = tx ? state.txMacEnqueued
                                           : state.rxCommitted;
    const bool commit_busy = tx ? state.txCommitBusy
                                : state.rxCommitBusy;
    const auto &cmd_seq = tx ? state.txCmdSeq : state.rxCmdSeq;

    if (state.config.maxCommitPerPass > 1024) {
        // Keeps the preview's fixed-size overlays sufficient; no real
        // configuration is anywhere near this.
        return {0, false};
    }
    std::uint64_t n = std::min<std::uint64_t>(
        dist(completed, processed), state.config.maxCommitPerPass);
    if (sw && n > 0 && held(state, flag_lock)) {
        h = OpCache::mix(h, 1); // flag-lock spin variant
        return {h, true};
    }
    h = OpCache::mix(h, 2);
    bool spin = held(state, disp_lock);
    h = OpCache::mix(h, spin);
    if (spin)
        return {h, true};

    std::uint64_t first = processed;
    h = OpCache::mix(h, n);
    h = OpCache::mix(h, first % slots);
    // The flag-marking stage: fold each frame's flag word (setStatusFlag
    // emission depends only on the word address) and remember the bits
    // it will set -- the same invocation's commit scan reads them.
    constexpr unsigned pend_cap = 64;
    if (n > pend_cap)
        return {0, false}; // exotic maxCommitPerPass: record live
    Addr pend_word[pend_cap] = {};
    std::uint32_t pend_mask[pend_cap] = {};
    unsigned n_pend = 0;
    for (std::uint64_t i = first; i < first + n; ++i) {
        std::uint64_t seq = cmd_seq[i % slots];
        Addr word = state.flagWordAddr(flag_base, seq);
        unsigned bit = state.flagBit(seq) % 32;
        h = OpCache::mix(h, word);
        unsigned k = 0;
        while (k < n_pend && pend_word[k] != word)
            ++k;
        if (k == n_pend) {
            pend_word[n_pend] = word;
            pend_mask[n_pend] = 0;
            ++n_pend;
        }
        pend_mask[k] |= 1u << bit;
    }

    bool commit = !commit_busy;
    h = OpCache::mix(h, commit);
    if (!commit)
        return {h, true};

    // Commit stage 1 runs against the *updated* processed pointer.
    std::uint64_t ordered = ordered_now;
    if (dist(first + n, ordered_now) > 0) {
        if (sw && held(state, order_lock)) {
            h = OpCache::mix(h, 3); // order-lock spin variant
            return {h, true};
        }
        h = OpCache::mix(h, 4);
        ordered += previewCommitScan(flag_base, ordered_now,
                                     state.config.maxCommitPerPass, h,
                                     pend_word, pend_mask, n_pend);
    } else {
        h = OpCache::mix(h, 5);
    }

    // Commit stage 2: enqueue/delivery loop size and ring offset.
    std::size_t used = tx ? macTx.depth() + state.macTxReserved
                          : dmaWrite.depth() + state.dmaWriteReserved;
    std::size_t cap = tx ? macTx.capacity() : dmaWrite.capacity();
    unsigned space = used < cap ? static_cast<unsigned>(cap - used) : 0;
    unsigned count = static_cast<unsigned>(std::min<std::uint64_t>(
        {dist(ordered, committed_ptr), space,
         state.config.maxCommitPerPass}));
    h = OpCache::mix(h, count);
    h = OpCache::mix(h, committed_ptr % slots);
    return {h, true};
}

FwTasks::PathKey
FwTasks::pathKeyProcessTxDma() const
{
    return pathKeyProcessDma(true);
}

FwTasks::PathKey
FwTasks::pathKeyProcessRxDma() const
{
    return pathKeyProcessDma(false);
}

// ---------------------------------------------------------------------
// Hardware / host glue
// ---------------------------------------------------------------------

void
FwTasks::sendDoorbell(std::uint64_t total_bds)
{
    state.hostPostedBds = total_bds;
    state.spad.storage().storeWord(
        state.counterAddr(FwState::CtrHostPostedBds),
        static_cast<std::uint32_t>(total_bds));
    if (onWorkArrival)
        onWorkArrival();
}

void
FwTasks::recvDoorbell(std::uint64_t total_bds)
{
    state.hostRecvBdsPosted = total_bds;
    state.spad.storage().storeWord(
        state.counterAddr(FwState::CtrHostRecvBds),
        static_cast<std::uint32_t>(total_bds));
    if (onWorkArrival)
        onWorkArrival();
}

std::optional<Addr>
FwTasks::allocRxSlot(unsigned len)
{
    if (len > state.config.slotBytes)
        return std::nullopt;
    if (state.macRxAllocated - state.rxSlotsFreed >=
        state.config.rxSlots) {
        return std::nullopt; // receive ring exhausted: hardware drop
    }
    Addr slot = rxBufSdram +
        (state.macRxAllocated % state.config.rxSlots) *
        state.config.slotBytes;
    ++state.macRxAllocated;
    return slot;
}

void
FwTasks::rxFrameStored(const MacRx::StoredFrame &sf)
{
    std::uint64_t seq = state.macRxStored;
    unsigned slot_idx = seq % state.config.rxSlots;
    auto &info = state.rxInfo[slot_idx];
    info.sdramAddr = sf.sdramAddr;
    info.len = sf.lenBytes;

    // The MAC writes its hardware descriptor into the scratchpad ring
    // and bumps its progress pointer.
    Addr hw_at = state.rxHwDescBase + slot_idx * 8;
    auto &storage = state.spad.storage();
    storage.storeWord(hw_at, static_cast<std::uint32_t>(sf.sdramAddr));
    storage.storeWord(hw_at + 4, sf.lenBytes);
    state.spad.access(ids.macRx, hw_at, SpadOp::WriteTiming, 0, nullptr);
    state.spad.access(ids.macRx, hw_at + 4, SpadOp::WriteTiming, 0,
                      nullptr);
    ++state.macRxStored;
    hwCounterWrite(FwState::CtrMacRxStored, state.macRxStored,
                   ids.macRx);
}

} // namespace tengig
