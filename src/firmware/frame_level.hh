/**
 * @file
 * Frame-level parallel firmware dispatcher (Section 3.3, Fig. 5).
 *
 * Every core runs the same dispatch loop: it polls the hardware
 * progress pointers and software claim pointers, builds an event
 * structure for the first bundle of ready work units it finds, and
 * executes the handler -- so any number of cores can run the *same*
 * handler type concurrently on different frames.  Total frame ordering
 * is restored by the status-flag commit machinery inside the tasks.
 */

#ifndef TENGIG_FIRMWARE_FRAME_LEVEL_HH
#define TENGIG_FIRMWARE_FRAME_LEVEL_HH

#include "firmware/tasks.hh"
#include "proc/dispatcher.hh"

namespace tengig {

class OpCache;

class FrameLevelDispatcher : public Dispatcher
{
  public:
    /** @param cache Optional op-cache; nullptr records every poll. */
    explicit FrameLevelDispatcher(FwTasks &tasks,
                                  OpCache *cache = nullptr);

    void next(unsigned core_id, OpList &out) override;

    /**
     * Parking is safe when no check is ready and the whole TX+RX
     * pipeline is drained: until new outside work arrives (doorbell or
     * frame reception, both of which wake parked cores), every future
     * poll is provably empty-handed.
     */
    bool canPark(unsigned core_id) const override;

    void notifyVirtualPolls(unsigned core_id, std::uint64_t n) override;

    std::uint64_t idlePolls() const { return idle.value(); }
    std::uint64_t dispatches() const { return found.value(); }

  private:
    /** One dispatch-loop check: poll cost + conditional task body. */
    struct Check
    {
        bool isTx;
        Addr pollAddr;                       //!< progress word polled
        bool (FwTasks::*ready)() const;
        bool (FwTasks::*run)(OpRecorder &);
        FwTasks::PathKey (FwTasks::*key)() const;
    };

    /** Cache-enabled dispatch: predicate scan, key, replay or record. */
    void cachedNext(unsigned start, OpList &out);

    /**
     * Record the poll pass live, exactly as the uncached dispatcher
     * emits it: poll ops for checks [0, j], handler body at j (j ==
     * checks.size() means a full empty-handed pass, retagged Idle).
     */
    void recordLive(unsigned start, std::size_t j, OpList &out);

    FwTasks &tasks;
    OpCache *cache;
    std::vector<Check> checks;
    unsigned rotate = 0;

    stats::Counter idle;
    stats::Counter found;
};

} // namespace tengig

#endif // TENGIG_FIRMWARE_FRAME_LEVEL_HH
