/**
 * @file
 * Cached-OpList replay for the firmware dispatchers (DESIGN.md §14).
 *
 * Steady-state traffic makes the dispatchers re-emit structurally
 * identical micro-op streams millions of times: the stream a handler
 * records is a pure function of a small set of control inputs (which
 * check fired, lock outcomes, bundle size, ring offsets, flag-word
 * contents around the commit pointer).  The op-cache folds exactly
 * those inputs into a 64-bit path key *before* the handler runs; on a
 * hit the dispatcher copies the cached POD op stream into the outgoing
 * OpList and re-runs the handler with a muted recorder, so every
 * functional state transition (counter claims, lock flips, scratchpad
 * flag words, per-invocation action closures) still happens while the
 * emission work -- the dominant host cost -- is skipped.
 *
 * Keying contract: a handler's path-key function must fold every value
 * that can change its emitted stream and nothing that is per-run
 * static.  Anything the key cannot see (the vnic TX commit gate, whose
 * admit decisions charge rate buckets mid-emission) must instead mark
 * the path uncacheable via PathKey::cacheable -- a bypass, counted but
 * never inserted.  `opCacheVerify` re-records every hit live and
 * byte-compares against the cached stream, which is how the golden
 * equivalence suite pins the contract down.
 */

#ifndef TENGIG_FIRMWARE_OP_CACHE_HH
#define TENGIG_FIRMWARE_OP_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "proc/micro_op.hh"
#include "sim/stats.hh"

namespace tengig {

namespace obs { class StatGroup; }

class OpCache
{
  public:
    struct Entry
    {
        std::vector<MicroOp> ops;
        std::uint32_t actionCount = 0;
        bool idlePoll = false;
    };

    explicit OpCache(bool verify_mode = false) : verifyMode(verify_mode)
    {}

    /** Starting key for a keyed path; @p salt distinguishes callers. */
    static std::uint64_t
    seed(std::uint64_t salt)
    {
        return mix(0x9e3779b97f4a7c15ull, salt);
    }

    /** Fold one control input into the key (splitmix64 finalizer). */
    static std::uint64_t
    mix(std::uint64_t h, std::uint64_t v)
    {
        std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) +
                               (h >> 2));
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    /** nullptr on miss.  The pointer is valid until the next insert. */
    const Entry *
    lookup(std::uint64_t key)
    {
        auto it = map.find(key);
        if (it == map.end()) {
            ++nMisses;
            return nullptr;
        }
        ++nHits;
        return &it->second;
    }

    void
    insert(std::uint64_t key, const OpList &l)
    {
        if (map.size() >= maxEntries) {
            // Pathological key churn: drop everything rather than grow
            // without bound.  Counted so the stats make it visible.
            map.clear();
            ++nInvalidates;
        }
        Entry &e = map[key];
        e.ops = l.ops;
        e.actionCount = static_cast<std::uint32_t>(l.actions.size());
        e.idlePoll = l.idlePoll;
    }

    /** An uncacheable path was taken (e.g. vnic TX commit gate). */
    void noteBypass() { ++nBypasses; }

    bool verify() const { return verifyMode; }

    /**
     * Verify-mode check: @p fresh was recorded live for a key that hit
     * @p cached.  Any divergence is a keying bug: something that
     * changes the emitted stream was not folded into the path key.
     */
    void verifyAgainst(const Entry &cached, const OpList &fresh,
                       const char *where) const;

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }

    void registerStats(obs::StatGroup &g) const;

  private:
    /**
     * The steady-state working set scales with ring positions (ring
     * offsets appear in cached addresses): ~7 rotations x 128 slots x
     * a few bundle sizes per handler.  32k entries holds it with room;
     * ~100 ops x 12 B each keeps worst-case memory in the tens of MB.
     */
    static constexpr std::size_t maxEntries = 32768;

    std::unordered_map<std::uint64_t, Entry> map;
    bool verifyMode;

    stats::Counter nHits;
    stats::Counter nMisses;
    stats::Counter nInvalidates;
    stats::Counter nBypasses;
};

} // namespace tengig

#endif // TENGIG_FIRMWARE_OP_CACHE_HH
