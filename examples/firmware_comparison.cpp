/**
 * @file
 * Firmware organization comparison: the paper's three designs side by
 * side on identical hardware.
 *
 *  1. task-level parallelism with the Tigon-II event register (Fig. 4)
 *  2. frame-level parallelism, software-only ordering (Fig. 5)
 *  3. frame-level parallelism, RMW-enhanced ordering (set/update)
 *
 * For each, reports duplex throughput, per-core IPC, and lock
 * behavior while scaling core count -- reproducing the argument of
 * Sections 3 and 6.3 in one runnable program.
 */

#include <cstdio>

#include "nic/controller.hh"

using namespace tengig;

namespace {

struct Row
{
    double gbps;
    double ipc;
    std::uint64_t spins;
};

Row
runOne(unsigned cores, bool task_level, bool rmw)
{
    NicConfig cfg;
    cfg.cores = cores;
    cfg.cpuMhz = 200.0;
    cfg.taskLevelFirmware = task_level;
    cfg.firmware.rmwEnhanced = rmw;
    NicController nic(cfg);
    NicResults r = nic.run(2 * tickPerMs, 3 * tickPerMs);
    std::uint64_t spins = 0;
    for (unsigned l = 0; l < numFwLocks; ++l)
        spins += nic.firmwareState().lockSpins[l];
    return Row{r.totalUdpGbps, r.aggregateIpc / cores, spins};
}

} // namespace

int
main()
{
    std::printf("Firmware organizations on identical hardware "
                "(200 MHz cores, 4 banks, duplex\n10 GbE, limit "
                "19.14 Gb/s):\n\n");
    std::printf("%-6s | %-22s | %-22s | %-22s\n", "",
                "task-level (Fig. 4)", "frame-level SW (Fig. 5)",
                "frame-level RMW");
    std::printf("%-6s | %10s %11s | %10s %11s | %10s %11s\n", "Cores",
                "Gb/s", "IPC", "Gb/s", "IPC", "Gb/s", "IPC");
    std::printf("%.*s\n", 80,
                "--------------------------------------------------------"
                "------------------------");
    for (unsigned cores : {1u, 2u, 4u, 6u, 8u}) {
        Row tl = runOne(cores, true, false);
        Row sw = runOne(cores, false, false);
        Row rmw = runOne(cores, false, true);
        std::printf("%-6u | %10.2f %11.3f | %10.2f %11.3f | %10.2f "
                    "%11.3f\n", cores, tl.gbps, tl.ipc, sw.gbps, sw.ipc,
                    rmw.gbps, rmw.ipc);
    }

    std::printf("\nWhat to look for:\n"
                " - task-level throughput flattens (one core per event "
                "type: Section 3.2);\n"
                " - frame-level scales to line rate by 6 cores;\n"
                " - at the same core count, the RMW firmware leaves "
                "more idle headroom, which is\n"
                "   why the paper runs it 17%% slower (166 MHz) at "
                "equal throughput.\n");
    return 0;
}
