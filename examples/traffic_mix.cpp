/**
 * @file
 * Flow-count sweep: does per-flow state change what the NIC can do?
 *
 * The firmware processes frames, not flows -- per-flow state lives
 * only at the endpoints (the generator's sequence spaces and the
 * validating sinks).  Sweeping one duplex bimodal workload from 1 to
 * 256 concurrent flows therefore ought to leave throughput flat while
 * the per-flow ordering checks keep passing; this example shows both,
 * and records/replays the largest run to demonstrate that any random
 * mix is a reproducible artifact.
 */

#include <cstdio>
#include <sstream>

#include "nic/controller.hh"

using namespace tengig;

namespace {

NicConfig
mixConfig(unsigned nflows)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txTraffic = TrafficProfile::bimodalRequestResponse(
        nflows, 90, 1472, 0.5, 1.0, 0x5eed + nflows);
    cfg.rxTraffic = TrafficProfile::uniform(
        nflows, SizeModel::bimodal(90, 1472, 0.5),
        ArrivalModel::poisson(), 1.0, 0xfeed + nflows);
    return cfg;
}

} // namespace

int
main()
{
    std::printf("Duplex bimodal 90/1472 mix vs. number of concurrent "
                "flows (6 cores @ 200 MHz):\n\n");
    std::printf("%7s | %9s | %9s | %7s | %6s\n", "flows", "tx Gb/s",
                "rx Gb/s", "checked", "errors");

    for (unsigned nflows : {1u, 4u, 16u, 64u, 256u}) {
        NicController nic(mixConfig(nflows));
        NicResults r = nic.run(tickPerMs, 2 * tickPerMs);
        std::printf("%7u | %9.2f | %9.2f | %7llu | %6llu\n", nflows,
                    r.txUdpGbps, r.rxUdpGbps,
                    static_cast<unsigned long long>(r.flowsValidated),
                    static_cast<unsigned long long>(r.errors));
    }

    // Record the 256-flow receive schedule and replay it through a
    // second NIC: identical offered traffic, bit for bit.
    std::ostringstream trace;
    TraceRecorder rec(trace);
    NicController orig(mixConfig(256));
    orig.rxTrafficEngine()->record(&rec);
    orig.run(tickPerMs, 2 * tickPerMs);

    std::istringstream in(trace.str());
    NicController replay(mixConfig(256));
    replay.useRxTrace(in);
    NicResults r2 = replay.run(tickPerMs, 2 * tickPerMs);

    std::printf("\nreplay of the 256-flow run: %llu recorded frames, "
                "%llu replayed, %llu errors\n",
                static_cast<unsigned long long>(rec.records()),
                static_cast<unsigned long long>(
                    replay.frameGenerator().framesOffered()),
                static_cast<unsigned long long>(r2.errors));
    return 0;
}
