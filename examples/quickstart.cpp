/**
 * @file
 * Quickstart: build the paper's 10 Gb/s NIC (6 cores at 200 MHz, 4
 * scratchpad banks), run a full-duplex stream of maximum-sized UDP
 * datagrams, and print the headline numbers.
 *
 * Usage: quickstart [cores] [mhz] [rmw(0|1)] [payload_bytes]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "nic/controller.hh"

using namespace tengig;

int
main(int argc, char **argv)
{
    NicConfig cfg;
    cfg.cores = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
    cfg.cpuMhz = argc > 2 ? std::atof(argv[2]) : 200.0;
    cfg.firmware.rmwEnhanced = argc > 3 && std::atoi(argv[3]) != 0;
    if (argc > 4) {
        cfg.txPayloadBytes = static_cast<unsigned>(std::atoi(argv[4]));
        cfg.rxPayloadBytes = cfg.txPayloadBytes;
    }
    cfg.taskLevelFirmware = argc > 5 && std::atoi(argv[5]) != 0;

    std::cout << "tengig-nic quickstart: " << cfg.cores << " cores @ "
              << cfg.cpuMhz << " MHz, "
              << (cfg.firmware.rmwEnhanced ? "RMW-enhanced"
                                           : "software-only")
              << " ordering, "
              << (cfg.taskLevelFirmware ? "task-level" : "frame-level")
              << " firmware, " << cfg.txPayloadBytes
              << "B UDP payloads\n";

    NicController nic(cfg);
    NicResults r = nic.run(2 * tickPerMs, 4 * tickPerMs);

    double limit = 2 * lineRateUdpGbps(cfg.txPayloadBytes);
    std::cout << std::fixed << std::setprecision(2)
              << "  duplex UDP throughput : " << r.totalUdpGbps
              << " Gb/s (Ethernet limit " << limit << ")\n"
              << "  tx " << r.txUdpGbps << " Gb/s @ "
              << static_cast<std::uint64_t>(r.txFps) << " f/s | rx "
              << r.rxUdpGbps << " Gb/s @ "
              << static_cast<std::uint64_t>(r.rxFps) << " f/s\n"
              << "  per-core IPC          : " << std::setprecision(3)
              << r.aggregateIpc / cfg.cores << "\n"
              << "  scratchpad bandwidth  : " << std::setprecision(2)
              << r.spadGbps << " Gb/s consumed\n"
              << "  frame-memory bandwidth: " << r.sdramGbps
              << " Gb/s consumed\n"
              << "  validation errors     : " << r.errors
              << ", rx drops: " << r.rxDropped << "\n";

    const CoreStats &s = r.coreTotals;
    std::uint64_t tot = s.totalCycles();
    if (tot) {
        std::cout << "  cycle breakdown: execute "
                  << 100.0 * s.executeCycles / tot << "% | imiss "
                  << 100.0 * s.imissCycles / tot << "% | load "
                  << 100.0 * s.loadStallCycles / tot << "% | conflict "
                  << 100.0 * s.conflictCycles / tot << "% | pipeline "
                  << 100.0 * s.pipelineCycles / tot << "% | idle "
                  << 100.0 * s.idleCycles / tot << "%\n";
    }
    return r.errors == 0 ? 0 : 1;
}
