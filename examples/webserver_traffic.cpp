/**
 * @file
 * Web-server scenario: the asymmetric traffic mix the paper's
 * introduction motivates (a network server feeding a 10 Gb/s link).
 *
 * Each scenario is a real multi-flow TrafficProfile (src/traffic): many
 * concurrent connections, bimodal request/response frame sizes, and
 * Poisson or bursty arrivals, instead of a single fixed-size stream.
 * The example reports how the firmware's cycle budget redistributes
 * between the send and receive paths under each mix; the paper's
 * symmetric bulk-transfer workload stays as the fixed-size reference.
 */

#include <cstdio>

#include "nic/controller.hh"

using namespace tengig;

namespace {

void
runMix(const char *name, const NicConfig &cfg)
{
    NicController nic(cfg);
    NicResults r = nic.run(2 * tickPerMs, 4 * tickPerMs);

    double send_cycles = 0, recv_cycles = 0;
    const FuncTag send_tags[] = {FuncTag::FetchSendBd, FuncTag::SendFrame,
                                 FuncTag::SendDispatch, FuncTag::SendLock};
    const FuncTag recv_tags[] = {FuncTag::FetchRecvBd, FuncTag::RecvFrame,
                                 FuncTag::RecvDispatch, FuncTag::RecvLock};
    for (FuncTag t : send_tags)
        send_cycles += static_cast<double>(r.profile[t].cycles);
    for (FuncTag t : recv_tags)
        recv_cycles += static_cast<double>(r.profile[t].cycles);
    double total = static_cast<double>(r.coreTotals.totalCycles());

    std::printf("%-24s | tx %5.2f Gb/s @%7.0f f/s | rx %5.2f Gb/s "
                "@%7.0f f/s | cycles: send %4.1f%% recv %4.1f%% idle "
                "%4.1f%% | flows %3llu | errors %llu\n",
                name, r.txUdpGbps, r.txFps, r.rxUdpGbps, r.rxFps,
                100.0 * send_cycles / total, 100.0 * recv_cycles / total,
                100.0 * r.coreTotals.idleCycles / total,
                static_cast<unsigned long long>(r.flowsValidated),
                static_cast<unsigned long long>(r.errors));
}

NicConfig
baseConfig()
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("Web-server traffic mixes on the 6-core 200 MHz NIC "
                "(duplex 10 GbE):\n\n");

    // Static-content server: 64 connections sending mostly full-size
    // response frames (a few small control frames mixed in), receiving
    // sparse small requests/ACKs as Poisson arrivals at 10% load.
    {
        NicConfig cfg = baseConfig();
        cfg.txTraffic = TrafficProfile::bimodalRequestResponse(
            64, 128, 1472, 0.05, 1.0, 0xc0ffee);
        cfg.rxTraffic = TrafficProfile::uniform(
            64, SizeModel::bimodal(90, 466, 0.8),
            ArrivalModel::poisson(), 0.10, 0xc0ffee);
        runMix("content server", cfg);
    }

    // API server: medium responses out, a steady stream of small
    // queries in at a quarter of line rate.
    {
        NicConfig cfg = baseConfig();
        cfg.txTraffic = TrafficProfile::bimodalRequestResponse(
            128, 200, 700, 0.3, 1.0, 0xa91);
        cfg.rxTraffic = TrafficProfile::uniform(
            128, SizeModel::fixed(200), ArrivalModel::poisson(), 0.25,
            0xa91);
        runMix("api server", cfg);
    }

    // Bulk ingest (log collector): small ACKs out, bursty near-line-
    // rate ingest of an IMIX-like mix in -- the inverted direction.
    {
        NicConfig cfg = baseConfig();
        cfg.txTraffic = TrafficProfile::uniform(
            32, SizeModel::fixed(100), ArrivalModel::paced(), 1.0,
            0x1095);
        cfg.rxTraffic = TrafficProfile::uniform(
            32, SizeModel::imix(), ArrivalModel::onOff(0.25, 32.0), 1.0,
            0x1095);
        runMix("ingest (rx-heavy)", cfg);
    }

    // Symmetric bulk transfer for reference: the paper's fixed-size
    // single-stream workload on the legacy knobs.
    runMix("bulk duplex (paper)", baseConfig());

    std::printf("\nThe firmware's frame-level organization lets idle "
                "send-path cores absorb receive\nwork (and vice versa) "
                "without static task assignment -- the cycle split "
                "above follows\nthe traffic mix, not the core count.\n");
    return 0;
}
