/**
 * @file
 * Web-server scenario: the asymmetric traffic mix the paper's
 * introduction motivates (a network server feeding a 10 Gb/s link).
 *
 * The server transmits large response frames at full backlog while
 * receiving a lighter stream of small request/ACK frames -- unlike the
 * symmetric saturation workloads of the evaluation section.  The
 * example reports how the firmware's cycle budget redistributes
 * between the send and receive paths under this mix.
 */

#include <cstdio>

#include "nic/controller.hh"

using namespace tengig;

namespace {

void
runMix(const char *name, unsigned tx_payload, unsigned rx_payload,
       double rx_rate)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txPayloadBytes = tx_payload;
    cfg.rxPayloadBytes = rx_payload;
    cfg.rxOfferedRate = rx_rate;
    NicController nic(cfg);
    NicResults r = nic.run(2 * tickPerMs, 4 * tickPerMs);

    double send_cycles = 0, recv_cycles = 0;
    const FuncTag send_tags[] = {FuncTag::FetchSendBd, FuncTag::SendFrame,
                                 FuncTag::SendDispatch, FuncTag::SendLock};
    const FuncTag recv_tags[] = {FuncTag::FetchRecvBd, FuncTag::RecvFrame,
                                 FuncTag::RecvDispatch, FuncTag::RecvLock};
    for (FuncTag t : send_tags)
        send_cycles += static_cast<double>(r.profile[t].cycles);
    for (FuncTag t : recv_tags)
        recv_cycles += static_cast<double>(r.profile[t].cycles);
    double total = static_cast<double>(r.coreTotals.totalCycles());

    std::printf("%-24s | tx %5.2f Gb/s @%7.0f f/s | rx %5.2f Gb/s "
                "@%7.0f f/s | cycles: send %4.1f%% recv %4.1f%% idle "
                "%4.1f%% | errors %llu\n",
                name, r.txUdpGbps, r.txFps, r.rxUdpGbps, r.rxFps,
                100.0 * send_cycles / total, 100.0 * recv_cycles / total,
                100.0 * r.coreTotals.idleCycles / total,
                static_cast<unsigned long long>(r.errors));
}

} // namespace

int
main()
{
    std::printf("Web-server traffic mixes on the 6-core 200 MHz NIC "
                "(duplex 10 GbE):\n\n");
    // Static-content server: big responses out, sparse small requests
    // in (requests ~512B at 10%% of small-frame line rate).
    runMix("content server", 1472, 466, 0.10);
    // API server: medium responses, steady small queries.
    runMix("api server", 700, 200, 0.25);
    // Bulk ingest (log collector): small ACKs out... inverted mix.
    runMix("ingest (rx-heavy)", 100, 1472, 1.0);
    // Symmetric bulk transfer for reference (the paper's workload).
    runMix("bulk duplex (paper)", 1472, 1472, 1.0);

    std::printf("\nThe firmware's frame-level organization lets idle "
                "send-path cores absorb receive\nwork (and vice versa) "
                "without static task assignment -- the cycle split "
                "above follows\nthe traffic mix, not the core count.\n");
    return 0;
}
