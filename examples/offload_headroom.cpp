/**
 * @file
 * Offload-headroom estimator.
 *
 * The paper's closing argument is that a programmable NIC's value is
 * the compute left over for services beyond Ethernet processing --
 * TCP offload, iSCSI, NIC-side file caching, intrusion detection.
 * This example measures that headroom: it sweeps offered load on the
 * 6-core RMW configuration and reports the idle instruction budget
 * (MIPS) available to hypothetical services at each utilization, plus
 * the extra budget gained by stepping the clock back up from 166 to
 * 200 MHz.
 */

#include <cstdio>

#include "nic/controller.hh"

using namespace tengig;

namespace {

struct Point
{
    double gbps;
    double idleMips;
    double idlePct;
};

Point
measure(double mhz, double load)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = mhz;
    cfg.firmware.rmwEnhanced = true;
    cfg.rxOfferedRate = load;
    // Thin the transmit stream by shrinking the backlog window: use a
    // smaller ring so the sender idles between bursts at low load.
    if (load < 1.0)
        cfg.sendRingFrames = 64;
    NicController nic(cfg);
    NicResults r = nic.run(2 * tickPerMs, 3 * tickPerMs);
    double total = static_cast<double>(r.coreTotals.totalCycles());
    double idle_frac = r.coreTotals.idleCycles / total;
    double idle_mips = idle_frac * 6 * mhz; // one instr per idle cycle
    return Point{r.totalUdpGbps, idle_mips, 100.0 * idle_frac};
}

} // namespace

int
main()
{
    std::printf("Compute headroom for NIC-resident services "
                "(6-core RMW firmware):\n\n");
    std::printf("%-14s | %12s | %14s | %12s\n", "Receive load",
                "Duplex Gb/s", "Idle budget", "Idle share");
    std::printf("%.*s\n", 60,
                "------------------------------------------------------"
                "------");
    for (double load : {0.25, 0.5, 0.75, 1.0}) {
        Point p166 = measure(166.0, load);
        std::printf("%13.0f%% | %12.2f | %9.0f MIPS | %11.1f%%\n",
                    100 * load, p166.gbps, p166.idleMips, p166.idlePct);
    }

    Point full166 = measure(166.0, 1.0);
    Point full200 = measure(200.0, 1.0);
    std::printf("\nAt full line rate, stepping 166 -> 200 MHz buys "
                "%.0f extra MIPS of service\nbudget (%.1f%% -> %.1f%% "
                "idle) at higher power -- the paper's power argument "
                "in\nreverse: the RMW instructions made that budget "
                "available at the LOWER clock.\n",
                full200.idleMips - full166.idleMips, full166.idlePct,
                full200.idlePct);
    return 0;
}
