/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef TENGIG_BENCH_BENCH_UTIL_HH
#define TENGIG_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "nic/controller.hh"
#include "obs/bench_json.hh"

namespace tengig {
namespace bench {

/** Default measurement windows. */
constexpr Tick warmupTicks = 2 * tickPerMs;  //!< reach steady state
constexpr Tick measureTicks = 4 * tickPerMs;

/** Frames processed per direction in a result window. */
inline double
framesPerDirection(const NicResults &r)
{
    return 0.5 * (static_cast<double>(r.txFrames) +
                  static_cast<double>(r.rxFrames));
}

/** Per-frame profile row for one function bucket. */
struct ProfileRow
{
    double instructions;
    double memAccesses;
    double cycles;
};

/**
 * Normalize a bucket to per-frame-of-its-direction values.
 * Send-side buckets divide by transmitted frames, receive-side by
 * received frames.
 */
inline ProfileRow
perFrame(const NicResults &r, FuncTag tag)
{
    bool tx = tag == FuncTag::FetchSendBd || tag == FuncTag::SendFrame ||
              tag == FuncTag::SendDispatch || tag == FuncTag::SendLock;
    double frames = tx ? static_cast<double>(r.txFrames)
                       : static_cast<double>(r.rxFrames);
    const auto &b = r.profile[tag];
    if (frames <= 0)
        return {0, 0, 0};
    return {b.instructions / frames, b.memAccesses / frames,
            b.cycles / frames};
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

/**
 * The standard metrics object for one NIC run, shared by every bench
 * that emits BENCH_*.json: duplex throughput, frame counts, the error
 * breakdown, per-core IPC, the receive latency percentile summary,
 * and memory-system bandwidths.  Keys are inserted in a fixed order
 * so reports diff cleanly run over run (tengig-bench-v1).
 */
inline obs::json::Value
nicRunMetrics(const NicResults &r)
{
    using obs::json::Value;
    Value m = Value::object();
    m.set("totalUdpGbps", r.totalUdpGbps);
    m.set("txUdpGbps", r.txUdpGbps);
    m.set("rxUdpGbps", r.rxUdpGbps);
    m.set("txFps", r.txFps);
    m.set("rxFps", r.rxFps);
    m.set("txFrames", r.txFrames);
    m.set("rxFrames", r.rxFrames);
    m.set("rxDropped", r.rxDropped);

    Value errors = Value::object();
    errors.set("total", r.errors);
    errors.set("integrity", r.integrityErrors);
    errors.set("orderGaps", r.orderGaps);
    errors.set("orderDuplicates", r.orderDuplicates);
    m.set("errors", std::move(errors));

    m.set("aggregateIpc", r.aggregateIpc);
    Value per_core = Value::array();
    for (double ipc : r.coreIpc)
        per_core.push(ipc);
    m.set("perCoreIpc", std::move(per_core));

    Value lat = Value::object();
    lat.set("count", r.rxLatency.count);
    lat.set("meanUs", r.rxLatency.meanUs);
    lat.set("p50Us", r.rxLatency.p50Us);
    lat.set("p95Us", r.rxLatency.p95Us);
    lat.set("p99Us", r.rxLatency.p99Us);
    lat.set("maxUs", r.rxLatency.maxUs);
    m.set("rxLatency", std::move(lat));

    m.set("spadGbps", r.spadGbps);
    m.set("sdramGbps", r.sdramGbps);
    m.set("imemGbps", r.imemGbps);
    return m;
}

} // namespace bench
} // namespace tengig

#endif // TENGIG_BENCH_BENCH_UTIL_HH
