/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef TENGIG_BENCH_BENCH_UTIL_HH
#define TENGIG_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "nic/controller.hh"

namespace tengig {
namespace bench {

/** Default measurement windows. */
constexpr Tick warmupTicks = 2 * tickPerMs;  //!< reach steady state
constexpr Tick measureTicks = 4 * tickPerMs;

/** Frames processed per direction in a result window. */
inline double
framesPerDirection(const NicResults &r)
{
    return 0.5 * (static_cast<double>(r.txFrames) +
                  static_cast<double>(r.rxFrames));
}

/** Per-frame profile row for one function bucket. */
struct ProfileRow
{
    double instructions;
    double memAccesses;
    double cycles;
};

/**
 * Normalize a bucket to per-frame-of-its-direction values.
 * Send-side buckets divide by transmitted frames, receive-side by
 * received frames.
 */
inline ProfileRow
perFrame(const NicResults &r, FuncTag tag)
{
    bool tx = tag == FuncTag::FetchSendBd || tag == FuncTag::SendFrame ||
              tag == FuncTag::SendDispatch || tag == FuncTag::SendLock;
    double frames = tx ? static_cast<double>(r.txFrames)
                       : static_cast<double>(r.rxFrames);
    const auto &b = r.profile[tag];
    if (frames <= 0)
        return {0, 0, 0};
    return {b.instructions / frames, b.memAccesses / frames,
            b.cycles / frames};
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

} // namespace bench
} // namespace tengig

#endif // TENGIG_BENCH_BENCH_UTIL_HH
