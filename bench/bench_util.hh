/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef TENGIG_BENCH_BENCH_UTIL_HH
#define TENGIG_BENCH_BENCH_UTIL_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "nic/controller.hh"
#include "obs/bench_json.hh"

namespace tengig {
namespace bench {

/** Default measurement windows. */
constexpr Tick warmupTicks = 2 * tickPerMs;  //!< reach steady state
constexpr Tick measureTicks = 4 * tickPerMs;

/** Frames processed per direction in a result window. */
inline double
framesPerDirection(const NicResults &r)
{
    return 0.5 * (static_cast<double>(r.txFrames) +
                  static_cast<double>(r.rxFrames));
}

/** Per-frame profile row for one function bucket. */
struct ProfileRow
{
    double instructions;
    double memAccesses;
    double cycles;
};

/**
 * Normalize a bucket to per-frame-of-its-direction values.
 * Send-side buckets divide by transmitted frames, receive-side by
 * received frames.
 */
inline ProfileRow
perFrame(const NicResults &r, FuncTag tag)
{
    bool tx = tag == FuncTag::FetchSendBd || tag == FuncTag::SendFrame ||
              tag == FuncTag::SendDispatch || tag == FuncTag::SendLock;
    double frames = tx ? static_cast<double>(r.txFrames)
                       : static_cast<double>(r.rxFrames);
    const auto &b = r.profile[tag];
    if (frames <= 0)
        return {0, 0, 0};
    return {b.instructions / frames, b.memAccesses / frames,
            b.cycles / frames};
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

/**
 * The standard metrics object for one NIC run, shared by every bench
 * that emits BENCH_*.json: duplex throughput, frame counts, the error
 * breakdown, per-core IPC, the receive latency percentile summary,
 * and memory-system bandwidths.  Keys are inserted in a fixed order
 * so reports diff cleanly run over run (tengig-bench-v1).
 */
inline obs::json::Value
nicRunMetrics(const NicResults &r)
{
    using obs::json::Value;
    Value m = Value::object();
    m.set("totalUdpGbps", r.totalUdpGbps);
    m.set("txUdpGbps", r.txUdpGbps);
    m.set("rxUdpGbps", r.rxUdpGbps);
    m.set("txFps", r.txFps);
    m.set("rxFps", r.rxFps);
    m.set("txFrames", r.txFrames);
    m.set("rxFrames", r.rxFrames);
    m.set("rxDropped", r.rxDropped);

    Value errors = Value::object();
    errors.set("total", r.errors);
    errors.set("integrity", r.integrityErrors);
    errors.set("orderGaps", r.orderGaps);
    errors.set("orderDuplicates", r.orderDuplicates);
    m.set("errors", std::move(errors));

    m.set("aggregateIpc", r.aggregateIpc);
    Value per_core = Value::array();
    for (double ipc : r.coreIpc)
        per_core.push(ipc);
    m.set("perCoreIpc", std::move(per_core));

    Value lat = Value::object();
    lat.set("count", r.rxLatency.count);
    lat.set("meanUs", r.rxLatency.meanUs);
    lat.set("p50Us", r.rxLatency.p50Us);
    lat.set("p95Us", r.rxLatency.p95Us);
    lat.set("p99Us", r.rxLatency.p99Us);
    lat.set("maxUs", r.rxLatency.maxUs);
    m.set("rxLatency", std::move(lat));

    m.set("spadGbps", r.spadGbps);
    m.set("sdramGbps", r.sdramGbps);
    m.set("imemGbps", r.imemGbps);
    return m;
}

/**
 * Parse `--jobs=N` from the command line (sweep parallelism).
 * Returns 1 (serial) when absent; 0 or garbage is clamped to 1.
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            long n = std::strtol(argv[i] + 7, nullptr, 10);
            return n > 1 ? static_cast<unsigned>(n) : 1u;
        }
    }
    return 1;
}

/**
 * Run @p n independent sweep points, `fn(i) -> R`, across up to
 * @p jobs worker threads, and return the results indexed by point.
 *
 * Each point builds its own NicController, so simulations share no
 * mutable state (the only process-wide global is the atomic logging
 * quiet flag) and every point produces the identical result it would
 * in a serial sweep -- the caller prints from the returned vector, in
 * order, after all points finish.  jobs <= 1 degenerates to a plain
 * loop with no threads.
 */
template <typename Fn>
auto
runSweep(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        return out;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < n;)
            out[i] = fn(i);
    };
    std::vector<std::thread> pool;
    std::size_t threads = std::min<std::size_t>(jobs, n);
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return out;
}

} // namespace bench
} // namespace tengig

#endif // TENGIG_BENCH_BENCH_UTIL_HH
