/**
 * @file
 * Ablations of the design decisions DESIGN.md calls out:
 *  1. scratchpad banking (1/2/4/8 banks at 6x200 MHz) -- the paper
 *     argues banks must be overprovisioned to keep conflict latency
 *     low;
 *  2. task-level (event register) vs frame-level (distributed event
 *     queue) firmware -- the serialization that motivated the paper's
 *     frame-parallel organization;
 *  3. MESI vs MSI coherence for the Figure 3 study -- the E state
 *     barely matters for this sharing pattern, reinforcing that
 *     protocol choice is not the problem, locality is.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "src/coherence/trace_capture.hh"

using namespace tengig;
using namespace tengig::bench;
using namespace tengig::coherence;

int
main()
{
    printHeader("Ablation 1: scratchpad banking (6 cores @ 200 MHz)");
    std::printf("%-8s | %12s | %16s | %12s\n", "Banks", "Duplex Gb/s",
                "conflict stalls", "per-core IPC");
    std::printf("%.*s\n", 58,
                "----------------------------------------------------------");
    for (unsigned banks : {1u, 2u, 4u, 8u}) {
        NicConfig cfg;
        cfg.cores = 6;
        cfg.cpuMhz = 200.0;
        cfg.scratchpadBanks = banks;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        std::printf("%-8u | %12.2f | %14.1f%% | %12.3f\n", banks,
                    r.totalUdpGbps,
                    100.0 * r.coreTotals.conflictCycles /
                        r.coreTotals.totalCycles(),
                    r.aggregateIpc / 6);
    }

    printHeader("Ablation 2: task-level vs frame-level firmware");
    std::printf("%-8s | %16s | %16s\n", "Cores", "task-level Gb/s",
                "frame-level Gb/s");
    std::printf("%.*s\n", 48,
                "------------------------------------------------");
    for (unsigned cores : {2u, 4u, 6u, 8u}) {
        double tl, fl;
        {
            NicConfig cfg;
            cfg.cores = cores;
            cfg.cpuMhz = 200.0;
            cfg.taskLevelFirmware = true;
            NicController nic(cfg);
            tl = nic.run(warmupTicks, measureTicks).totalUdpGbps;
        }
        {
            NicConfig cfg;
            cfg.cores = cores;
            cfg.cpuMhz = 200.0;
            NicController nic(cfg);
            fl = nic.run(warmupTicks, measureTicks).totalUdpGbps;
        }
        std::printf("%-8u | %16.2f | %16.2f\n", cores, tl, fl);
    }
    std::printf("(task-level parallelism stops scaling: one core per "
                "event type, as in Fig. 4)\n");

    printHeader("Ablation 3: MESI vs MSI coherence (8 KB caches, 16 B "
                "lines)");
    {
        NicConfig cfg;
        cfg.cores = 6;
        cfg.cpuMhz = 200.0;
        NicController nic(cfg);
        Trace trace = captureControlTrace(nic, tickPerMs, tickPerMs);
        for (Protocol p : {Protocol::MESI, Protocol::MSI}) {
            CoherentCacheSystem sys(8, 8 * 1024, 16, p);
            sys.run(trace);
            std::printf("%-6s: hit ratio %5.1f%%, invalidating writes "
                        "%5.2f%%, bus upgrades %zu, writebacks %zu\n",
                        p == Protocol::MESI ? "MESI" : "MSI",
                        100.0 * sys.stats().hitRatio(),
                        100.0 * sys.stats().invalidatingWriteRatio(),
                        static_cast<std::size_t>(
                            sys.stats().busUpgrades),
                        static_cast<std::size_t>(
                            sys.stats().writebacks));
        }
    }
    return 0;
}
