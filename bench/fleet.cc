/**
 * @file
 * Scale-out fleet soak: M NICs in parallel, one deterministic run
 * (DESIGN.md §15).
 *
 * Four row families on the standard 6-core 200 MHz NIC with the fleet
 * duplex workload (fixed 1472 B frames, paced: tx 0.6 + rx 0.35 of
 * line rate, so the forwarded ring stream fits the destination wire):
 *
 *   baseline       one isolated instance, one thread: the per-node
 *                  host events/sec reference
 *   scale m<M>.t<T> ring-forwarding fleets of M nodes on T worker
 *                  threads; the scaling gate below applies to rows
 *                  with T <= hardware threads
 *   window w<W>    the throughput-vs-latency sweep: sync window W
 *                  (with fabric latency L = W, the lookahead minimum)
 *                  trades barrier overhead against switch transit
 *                  latency
 *   determinism    a 1-thread vs 4-thread pair of identical fleets
 *
 * The soak asserts the fleet contracts and exits nonzero on any
 * violation:
 *
 *   - determinism: the thread-count pair produces identical per-node
 *     wire/inject fingerprints and measured frame counts
 *   - correctness: zero validation errors on every row (forwarded
 *     frames may be shed at full FIFOs -- lossy receive contract --
 *     but never duplicated or corrupted)
 *   - scaling: for rows with 1 < T <= hardware threads, aggregate
 *     host events/sec >= 0.7 x T x the same fleet's 1-thread rate
 *   - concurrency: on multi-core hosts, threaded rows must observe
 *     >1 worker inside instance event loops simultaneously
 *
 * --json[=path] writes a tengig-bench-v1 document (default
 * BENCH_fleet.json); --quick shrinks windows for the smoke run.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "fleet/fleet.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

bool quick = false;
unsigned failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        ++failures;
        std::printf("  FAIL: %s\n", what);
    }
}

/** Fleet duplex workload: full-size paced flows leaving enough wire
 *  headroom at each receiver for the forwarded upstream stream. */
NicConfig
fleetNode()
{
    NicConfig cfg;
    cfg.txTraffic = TrafficProfile::uniform(
        4, SizeModel::fixed(1472), ArrivalModel::paced(), 0.6, 0xf1e1);
    cfg.rxTraffic = TrafficProfile::uniform(
        4, SizeModel::fixed(1472), ArrivalModel::paced(), 0.35, 0xf1e2);
    return cfg;
}

FleetConfig
makeFleet(unsigned nodes, unsigned threads, Tick window_us, bool forward)
{
    FleetConfig fc = FleetConfig::uniform(fleetNode(), nodes, forward);
    fc.threads = threads;
    fc.syncWindowTicks = window_us * tickPerUs;
    fc.sw.fabricLatencyTicks = window_us * tickPerUs;
    fc.warmupTicks = quick ? 100 * tickPerUs : 500 * tickPerUs;
    fc.measureTicks = quick ? 200 * tickPerUs : 1500 * tickPerUs;
    return fc;
}

obs::json::Value
rowConfig(const FleetConfig &fc)
{
    using obs::json::Value;
    Value c = Value::object();
    c.set("nodes", static_cast<std::uint64_t>(fc.nodes.size()));
    c.set("threads", fc.threads);
    c.set("topology",
          fc.topology == FleetTopology::None ? "none" : "ring");
    c.set("syncWindowUs",
          static_cast<double>(fc.syncWindowTicks) / tickPerUs);
    c.set("switchLatencyUs",
          static_cast<double>(fc.sw.fabricLatencyTicks) / tickPerUs);
    c.set("txRate", 0.6);
    c.set("rxRate", 0.35);
    return c;
}

obs::json::Value
rowMetrics(const FleetResults &r, double scaling_efficiency)
{
    using obs::json::Value;
    Value m = Value::object();
    m.set("hostEventsPerSec", r.eventsPerSec);
    m.set("eventsExecuted", r.eventsExecuted);
    m.set("wallSeconds", r.wallSeconds);
    m.set("windows", r.windows);
    m.set("maxConcurrentWorkers", r.maxConcurrentWorkers);
    if (scaling_efficiency > 0)
        m.set("scalingEfficiency", scaling_efficiency);
    m.set("aggTotalUdpGbps", r.aggTotalGbps);
    m.set("aggTxUdpGbps", r.aggTxGbps);
    m.set("aggRxUdpGbps", r.aggRxGbps);
    m.set("errors", r.errors);
    m.set("framesForwarded", r.framesForwarded);
    m.set("framesDropped", r.framesDropped);
    m.set("injectRejected", r.injectRejected);
    m.set("switchLatencyMeanUs", r.switchLatencyMeanUs);
    m.set("switchLatencyP99Us", r.switchLatencyP99Us);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    quick = obs::hasFlag(argc, argv, "--quick");
    unsigned hw = std::thread::hardware_concurrency();
    if (!hw)
        hw = 1;

    obs::BenchReport report("fleet");
    printHeader("Fleet scale-out: M NICs in parallel, one "
                "deterministic run");
    std::printf("hardware threads: %u%s\n\n", hw,
                quick ? " (quick windows)" : "");

    std::printf("%-16s %8s %8s %12s %8s %10s %10s %8s\n", "row", "nodes",
                "threads", "events/s", "eff", "fwd", "latP99us", "errors");

    auto runRow = [&](const std::string &name, const FleetConfig &fc,
                      double eff_base) -> FleetResults {
        FleetRunner fleet(fc);
        FleetResults r = fleet.run();
        double eff = 0.0;
        if (eff_base > 0) {
            unsigned useful = std::min<unsigned>(
                {fc.threads ? fc.threads : hw, hw,
                 static_cast<unsigned>(fc.nodes.size())});
            eff = r.eventsPerSec / (useful * eff_base);
        }
        std::printf("%-16s %8zu %8u %12.0f %8.2f %10llu %10.1f %8llu\n",
                    name.c_str(), fc.nodes.size(), fc.threads,
                    r.eventsPerSec, eff,
                    static_cast<unsigned long long>(r.framesForwarded),
                    r.switchLatencyP99Us,
                    static_cast<unsigned long long>(r.errors));
        check(r.errors == 0, "validation errors in fleet row");
        // Delivery ledger: every offered frame must be forwarded or
        // accounted to a loss class; silent loss fails the soak.
        check(r.unaccountedLoss == 0,
              "unaccounted cross-node frame loss (ledger broken)");
        report.addRow(name, rowConfig(fc), rowMetrics(r, eff));
        return r;
    };

    // Baseline: one isolated node, one thread.
    FleetResults base =
        runRow("baseline", makeFleet(1, 1, 10, false), 0.0);

    // Thread-scaling rows: each fleet size measured at 1 thread (its
    // own linear-scaling reference) and at T = nodes threads.
    for (unsigned m : {2u, 4u}) {
        FleetConfig f1 = makeFleet(m, 1, 10, true);
        FleetResults r1 =
            runRow("scale m" + std::to_string(m) + ".t1", f1,
                   base.eventsPerSec);

        FleetConfig fm = makeFleet(m, m, 10, true);
        FleetResults rm = runRow(
            "scale m" + std::to_string(m) + ".t" + std::to_string(m),
            fm, r1.eventsPerSec);

        // The 0.7x-linear gate applies up to the hardware threads this
        // host actually has; oversubscribed rows are informational.
        if (m <= hw) {
            check(rm.eventsPerSec >= 0.7 * m * r1.eventsPerSec,
                  "aggregate events/sec below 0.7x linear scaling");
            check(rm.maxConcurrentWorkers > 1,
                  "threaded fleet never ran >1 instance concurrently");
        }
    }

    // Throughput-vs-latency sweep: sync window (= fabric latency).
    for (unsigned w : {2u, 5u, 10u, 20u, 50u}) {
        unsigned t = hw > 1 ? 2u : 1u;
        runRow("window w" + std::to_string(w) + "us",
               makeFleet(2, t, w, true), 0.0);
    }

    // Determinism pair: identical fleets, 1 vs 4 threads, must agree
    // on every per-node fingerprint and frame count.
    {
        FleetConfig fc = makeFleet(3, 1, 10, true);
        fc.warmupTicks = 100 * tickPerUs;
        fc.measureTicks = 200 * tickPerUs;
        FleetRunner serial(fc);
        FleetResults rs = serial.run();
        fc.threads = 4;
        FleetRunner threaded(fc);
        FleetResults rt = threaded.run();

        bool same = rs.wireHash == rt.wireHash &&
                    rs.injectHash == rt.injectHash &&
                    rs.framesForwarded == rt.framesForwarded;
        for (std::size_t i = 0; same && i < rs.nic.size(); ++i)
            same = rs.nic[i].txFrames == rt.nic[i].txFrames &&
                   rs.nic[i].rxFrames == rt.nic[i].rxFrames &&
                   rs.nic[i].errors == rt.nic[i].errors;
        std::printf("%-16s %8u %8s %12s %8s %10s %10s %8s\n",
                    "determinism", 3, "1 vs 4",
                    same ? "identical" : "DIVERGED", "-", "-", "-", "-");
        check(same, "fleet diverged across thread counts");

        using obs::json::Value;
        Value cfgj = rowConfig(fc);
        Value m = Value::object();
        m.set("identical", same);
        m.set("framesForwarded", rs.framesForwarded);
        report.addRow("determinism t1-vs-t4", std::move(cfgj),
                      std::move(m));
    }

    if (auto path = obs::jsonPathFromArgs(argc, argv, "fleet")) {
        report.write(*path);
        std::printf("\nwrote %s\n", path->c_str());
    }

    if (failures) {
        std::printf("\n%u fleet contract violation(s)\n", failures);
        return 1;
    }
    std::printf("\nall fleet contracts held\n");
    return 0;
}
