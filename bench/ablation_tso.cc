/**
 * @file
 * Deferred-segmentation (TSO) ablation -- the paper's future-work
 * direction (Section 8 / reference [4]).
 *
 * With segmentation offloaded, the host posts one descriptor pair per
 * group of frames and the NIC slices the large buffer itself.  The
 * wins to look for: per-frame Fetch-Send-BD work collapses (BD
 * fetches and parses amortize over the group), host descriptor
 * traffic shrinks by ~the segment count, and the saved cycles turn
 * into idle headroom at the same line rate.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

int
main()
{
    printHeader("Deferred segmentation (TSO): per-frame cost vs "
                "segments per descriptor");

    std::printf("%-10s | %10s | %13s | %13s | %10s | %9s\n",
                "Segments", "Gb/s (tx)", "FetchBD i/frm",
                "BD-fetch DMAs", "host BDs/s", "idle %");
    std::printf("%.*s\n", 78,
                "--------------------------------------------------------"
                "----------------------");

    for (unsigned segs : {1u, 2u, 4u, 8u, 16u}) {
        NicConfig cfg;
        cfg.cores = 6;
        cfg.cpuMhz = 200.0;
        cfg.firmware.tsoSegments = segs;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        const FwState &st = nic.firmwareState();
        double tx_frames = static_cast<double>(r.txFrames);
        double secs = static_cast<double>(r.measuredTicks) / tickPerSec;
        double fetch_instr =
            r.profile[FuncTag::FetchSendBd].instructions / tx_frames;
        double bd_per_s = 2.0 * r.txFps / segs;
        std::printf("%-10u | %10.2f | %13.1f | %13.3f | %10.0f | %8.1f%%\n",
                    segs, r.txUdpGbps, fetch_instr,
                    st.invFetchSendBd / (tx_frames > 0 ? tx_frames : 1),
                    bd_per_s,
                    100.0 * r.coreTotals.idleCycles /
                        r.coreTotals.totalCycles());
        (void)secs;
    }

    std::printf("\nAt 16 segments the host builds ~1/16th of the "
                "descriptors and the firmware's\nper-frame BD work "
                "drops accordingly -- freed cycles appear as idle "
                "headroom that\ncould host the paper's proposed "
                "offload services.\n");
    return 0;
}
