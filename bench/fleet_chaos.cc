/**
 * @file
 * Fleet chaos soak: a 4-node ring driven through a fabric fault storm
 * (DESIGN.md §16).
 *
 * Every node transmits a paced 0.6-line-rate 1472 B stream to its ring
 * neighbor and receives only cross-node traffic, so the per-flow
 * receive validators measure end-to-end fleet delivery and nothing
 * else.  The storm -- link flaps, mid-fabric drops, frame corruption,
 * ack loss, node-stall episodes -- is confined to the warmup window;
 * measurement opens after it ends.
 *
 * Rows and the contracts they assert (nonzero exit on any violation):
 *
 *   baseline       no chaos: the recovery reference
 *   health_identity baseline config + the health monitor: identical
 *                  per-node fingerprints and frame counts (the monitor
 *                  is a pure observer)
 *   storm_lossy    chaos on, reliable delivery off: losses are allowed
 *                  (gaps) but every lost frame is accounted to exactly
 *                  one fault class (unaccountedLoss == 0), nothing is
 *                  duplicated or delivered corrupted, and >= 1% of
 *                  offered frames were faulted (the storm is real)
 *   storm_reliable chaos on, reliable delivery on: zero gaps, zero
 *                  errors end to end; exact injected == recovered per
 *                  fault class; every storm-era frame recovered
 *                  (pendingStormEra == 0); duplicate suppressions ==
 *                  lost acks; receiver retries == MAC refusals;
 *                  measured receive throughput >= 95% of baseline
 *   determinism    the storm_reliable fleet on 1 vs 4 threads:
 *                  bit-identical fingerprints and recovery accounting
 *
 * --json[=path] writes a tengig-bench-v1 document (default
 * BENCH_fleet_chaos.json); --quick shrinks windows for the smoke run.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "fleet/fleet.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

bool quick = false;
unsigned failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        ++failures;
        std::printf("  FAIL: %s\n", what);
    }
}

/** Cross-traffic-only workload: every received frame crossed the
 *  fabric, so receive validation is end-to-end fleet delivery. */
NicConfig
chaosNode()
{
    NicConfig cfg;
    cfg.txTraffic = TrafficProfile::uniform(
        4, SizeModel::fixed(1472), ArrivalModel::paced(), 0.6, 0xc4a05);
    // Meter host posting to the profile's offered rate: without
    // pacing the send ring stays backlogged and the tx wire saturates,
    // leaving the switch egress ports zero headroom to ever drain a
    // retransmission backlog.
    cfg.txPaceRate = 0.6;
    return cfg;
}

FleetConfig
makeFleet(unsigned threads)
{
    FleetConfig fc = FleetConfig::uniform(chaosNode(), 4, true);
    fc.threads = threads;
    fc.syncWindowTicks = 10 * tickPerUs;
    fc.sw.fabricLatencyTicks = 10 * tickPerUs;
    // A shallow egress FIFO keeps the worst-case RTT (and with it the
    // derived retransmit timeout) in the tens of microseconds.
    fc.sw.egressQueueFrames = 32;
    fc.warmupTicks = quick ? 600 * tickPerUs : 1500 * tickPerUs;
    fc.measureTicks = quick ? 900 * tickPerUs : 3000 * tickPerUs;
    return fc;
}

/** The storm: every fault class live at once, ending well before the
 *  measurement window opens. */
void
addStorm(FleetConfig &fc)
{
    FabricFaultPlan &p = fc.fabricFaults;
    p.stormStart = quick ? 50 * tickPerUs : 100 * tickPerUs;
    p.stormEnd = quick ? 450 * tickPerUs : 1200 * tickPerUs;
    p.linkFlapRate = 0.25;
    p.dropRate = 0.02;
    p.corruptRate = 0.02;
    p.ackDropRate = 0.05;
    p.nodeStallRate = 0.02;
    p.nodeStallTicks = 50 * tickPerUs;
}

obs::json::Value
rowConfig(const FleetConfig &fc)
{
    using obs::json::Value;
    Value c = Value::object();
    c.set("nodes", static_cast<std::uint64_t>(fc.nodes.size()));
    c.set("threads", fc.threads);
    c.set("chaos", fc.fabricFaults.enabled());
    c.set("reliable", fc.reliable.enabled);
    c.set("stormUs",
          static_cast<double>(fc.fabricFaults.stormEnd -
                              fc.fabricFaults.stormStart) / tickPerUs);
    c.set("egressQueueFrames", fc.sw.egressQueueFrames);
    return c;
}

obs::json::Value
rowMetrics(const FleetResults &r)
{
    using obs::json::Value;
    Value m = Value::object();
    m.set("hostEventsPerSec", r.eventsPerSec);
    m.set("windows", r.windows);
    m.set("measuredUs", r.nic.empty() ? 0.0
          : static_cast<double>(r.nic[0].measuredTicks) / tickPerUs);
    m.set("aggRxUdpGbps", r.aggRxGbps);
    m.set("errors", r.errors);
    m.set("fabricOffered", r.fabricOffered);
    m.set("framesForwarded", r.framesForwarded);
    m.set("framesDropped", r.framesDropped);
    m.set("linkDownKills", r.fabricLinkDownKills);
    m.set("fabricDrops", r.fabricDrops);
    m.set("fabricCorrupt", r.fabricCorrupt);
    m.set("fabricAckLost", r.fabricAckLost);
    m.set("linkDownTicks", r.linkDownTicks);
    m.set("nodeStallEpisodes", r.nodeStallEpisodes);
    m.set("heartbeatMisses", r.heartbeatMisses);
    m.set("unaccountedLoss", r.unaccountedLoss);
    m.set("retransmits", r.retransmits);
    m.set("recoveredTotal", r.recoveredTotal);
    m.set("dupSuppressed", r.dupSuppressed);
    m.set("rxRefusals", r.rxRefusals);
    m.set("rxRetries", r.rxRetries);
    m.set("pendingStormEra", r.reliablePendingStormEra);
    return m;
}

std::uint64_t
sumGaps(const FleetResults &r)
{
    std::uint64_t n = 0;
    for (const NicResults &nic : r.nic)
        n += nic.orderGaps;
    return n;
}

std::uint64_t
sumDups(const FleetResults &r)
{
    std::uint64_t n = 0;
    for (const NicResults &nic : r.nic)
        n += nic.orderDuplicates;
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    quick = obs::hasFlag(argc, argv, "--quick");

    obs::BenchReport report("fleet_chaos");
    printHeader("Fleet chaos soak: fault storm, detection, and "
                "end-to-end recovery");
    std::printf("4-node ring, cross-traffic only%s\n\n",
                quick ? " (quick windows)" : "");

    std::printf("%-16s %10s %8s %8s %8s %8s %8s %8s\n", "row",
                "rxGbps", "faulted", "recov", "retx", "gaps", "dups",
                "errors");

    auto runRow = [&](const std::string &name, const FleetConfig &fc)
        -> FleetResults {
        FleetRunner fleet(fc);
        FleetResults r = fleet.run();
        std::uint64_t faulted = r.fabricLinkDownKills + r.fabricDrops +
                                r.fabricCorrupt;
        std::printf("%-16s %10.3f %8llu %8llu %8llu %8llu %8llu %8llu\n",
                    name.c_str(), r.aggRxGbps,
                    static_cast<unsigned long long>(faulted),
                    static_cast<unsigned long long>(r.recoveredTotal),
                    static_cast<unsigned long long>(r.retransmits),
                    static_cast<unsigned long long>(sumGaps(r)),
                    static_cast<unsigned long long>(sumDups(r)),
                    static_cast<unsigned long long>(r.errors));
        check(r.unaccountedLoss == 0,
              "unaccounted cross-node frame loss (ledger broken)");
        report.addRow(name, rowConfig(fc), rowMetrics(r));
        return r;
    };

    // Reference: the same fleet with a quiet fabric.
    FleetConfig base = makeFleet(1);
    FleetResults rb = runRow("baseline", base);
    check(rb.errors == 0, "baseline fleet has validation errors");
    check(sumGaps(rb) == 0, "baseline fleet has receive gaps");

    // The health monitor is a pure observer: turning it on must not
    // move a single frame or fingerprint bit.
    {
        FleetConfig fc = makeFleet(1);
        fc.healthMonitor = true;
        FleetResults rh = runRow("health_identity", fc);
        bool same = rh.wireHash == rb.wireHash &&
                    rh.injectHash == rb.injectHash &&
                    rh.framesForwarded == rb.framesForwarded &&
                    rh.errors == rb.errors;
        for (std::size_t i = 0; same && i < rb.nic.size(); ++i)
            same = rh.nic[i].txFrames == rb.nic[i].txFrames &&
                   rh.nic[i].rxFrames == rb.nic[i].rxFrames;
        check(same, "health monitor perturbed a chaos-free run");
    }

    // Storm without recovery: losses are visible (gaps) but every one
    // is accounted, nothing arrives corrupted or duplicated, and the
    // storm actually bites.
    {
        FleetConfig fc = makeFleet(1);
        addStorm(fc);
        FleetResults r = runRow("storm_lossy", fc);
        std::uint64_t faulted = r.fabricLinkDownKills + r.fabricDrops +
                                r.fabricCorrupt;
        check(r.errors == 0,
              "storm delivered corrupted or duplicated payloads");
        check(sumDups(r) == 0, "storm duplicated frames");
        check(faulted * 100 >= r.fabricOffered,
              "storm intensity under 1% of offered frames");
        check(r.fabricLinkDownKills > 0 && r.fabricDrops > 0 &&
                  r.fabricCorrupt > 0,
              "a fault class never fired (storm not exercising "
              "all classes)");
        check(r.nodeStallEpisodes > 0, "no node-stall episodes fired");
        check(r.heartbeatMisses > 0,
              "health monitor missed the induced node stalls");
        check(r.linkDownTicks > 0, "no link flap down time recorded");
    }

    // Storm with end-to-end reliable delivery: zero loss, zero
    // corruption, exact recovery accounting, full post-storm drain.
    FleetResults rr;
    {
        FleetConfig fc = makeFleet(1);
        addStorm(fc);
        fc.reliable.enabled = true;
        rr = runRow("storm_reliable", fc);
        std::uint64_t faulted = rr.fabricLinkDownKills + rr.fabricDrops +
                                rr.fabricCorrupt;
        check(rr.errors == 0, "reliable storm delivered bad payloads");
        check(sumGaps(rr) == 0,
              "reliable delivery lost cross-node frames (gaps)");
        check(sumDups(rr) == 0,
              "duplicate suppression let a retransmission through");
        check(faulted * 100 >= rr.fabricOffered,
              "storm intensity under 1% of offered frames");
        check(rr.recoveredByClass[static_cast<unsigned>(
                  FabricFaultClass::LinkDown)] == rr.fabricLinkDownKills,
              "link-down kills not exactly recovered");
        check(rr.recoveredByClass[static_cast<unsigned>(
                  FabricFaultClass::Drop)] == rr.fabricDrops,
              "fabric drops not exactly recovered");
        check(rr.recoveredByClass[static_cast<unsigned>(
                  FabricFaultClass::Corrupt)] == rr.fabricCorrupt,
              "corruptions not exactly recovered");
        check(rr.recoveredByClass[static_cast<unsigned>(
                  FabricFaultClass::AckLost)] == rr.fabricAckLost,
              "lost acks not exactly recovered");
        check(rr.recoveredByClass[static_cast<unsigned>(
                  FabricFaultClass::EgressFull)] == rr.framesDropped,
              "egress-FIFO drops not exactly recovered");
        check(rr.reliablePendingStormEra == 0,
              "storm-era frames still unrecovered at run end");
        check(rr.reliableOwedOutstanding == 0,
              "known-lost frames never repaid");
        check(rr.dupSuppressed == rr.fabricAckLost,
              "duplicate suppressions != lost acks");
        check(rr.rxRetries == rr.rxRefusals,
              "receiver retries != MAC refusals");
        check(rr.rxBuffered == 0,
              "frames still parked in reorder buffers at run end");
        check(rr.aggRxGbps >= 0.95 * rb.aggRxGbps,
              "post-storm recovery under 95% of baseline throughput");
    }

    // Chaos determinism: the storm_reliable fleet must be bit-
    // identical on 1 vs 4 worker threads -- every roll happens in the
    // single-threaded barrier pass.
    {
        FleetConfig fc = makeFleet(4);
        addStorm(fc);
        fc.reliable.enabled = true;
        FleetRunner threaded(fc);
        FleetResults rt = threaded.run();

        bool same = rt.wireHash == rr.wireHash &&
                    rt.injectHash == rr.injectHash &&
                    rt.framesForwarded == rr.framesForwarded &&
                    rt.retransmits == rr.retransmits &&
                    rt.recoveredTotal == rr.recoveredTotal &&
                    rt.dupSuppressed == rr.dupSuppressed &&
                    rt.nodeStallEpisodes == rr.nodeStallEpisodes &&
                    rt.heartbeatMisses == rr.heartbeatMisses;
        for (std::size_t i = 0; same && i < rr.nic.size(); ++i)
            same = rt.nic[i].txFrames == rr.nic[i].txFrames &&
                   rt.nic[i].rxFrames == rr.nic[i].rxFrames &&
                   rt.nic[i].errors == rr.nic[i].errors;
        std::printf("%-16s %10s %8s %8s %8s %8s %8s %8s\n",
                    "determinism", same ? "identical" : "DIVERGED",
                    "-", "-", "-", "-", "-", "-");
        check(same, "chaos fleet diverged across thread counts");

        using obs::json::Value;
        Value m = Value::object();
        m.set("identical", same);
        m.set("retransmits", rt.retransmits);
        report.addRow("determinism t1-vs-t4", rowConfig(fc),
                      std::move(m));
    }

    if (auto path = obs::jsonPathFromArgs(argc, argv, "fleet_chaos")) {
        report.write(*path);
        std::printf("\nwrote %s\n", path->c_str());
    }

    if (failures) {
        std::printf("\n%u chaos contract violation(s)\n", failures);
        return 1;
    }
    std::printf("\nall chaos contracts held\n");
    return 0;
}
