/**
 * @file
 * Table 2: theoretical peak IPCs of NIC firmware for different
 * processor configurations.
 *
 * Reproduces the paper's offline limit study on a firmware-shaped
 * dynamic instruction trace.  The trends to match:
 *  - for in-order cores, eliminating pipeline hazards matters more
 *    than branch prediction;
 *  - for out-of-order cores, branch prediction matters more than
 *    eliminating hazards;
 *  - a 2-wide out-of-order core with single-branch prediction only
 *    doubles the 1-wide in-order core's IPC, at far higher complexity;
 *  - wider issue shows strongly diminishing returns.
 */

#include <cstdio>

#include "src/ilp/ilp_analyzer.hh"
#include "src/mips/kernels.hh"

using namespace tengig;
using namespace tengig::ilp;

int
main()
{
    std::printf("\n=== Table 2: theoretical peak IPCs of NIC firmware "
                "===\n");

    // Primary trace: dynamic execution of the firmware's inner-loop
    // kernels written in the MIPS R4000 subset and run on the
    // functional machine -- the paper's methodology.  The statistical
    // generator provides a second, independently shaped trace as a
    // robustness check below.
    InstrTrace trace = mips::firmwareKernelTrace(300000);
    std::printf("(dynamic trace: %zu instructions from MIPS-subset "
                "firmware kernels)\n", trace.size());

    const unsigned widths[] = {1, 2, 4, 8, 16};
    std::printf("%-6s %-6s | %8s %8s | %8s %8s %8s\n", "Issue",
                "Width", "PerfPBP", "PerfNoBP", "StallPBP", "StallPBP1",
                "StallNoBP");
    std::printf("%.*s\n", 70,
                "----------------------------------------------------"
                "------------------");

    auto ipc = [&](bool in_order, unsigned w, bool perfect_pipe,
                   BranchModel bm) {
        IlpConfig cfg;
        cfg.inOrder = in_order;
        cfg.width = w;
        cfg.perfectPipeline = perfect_pipe;
        cfg.branch = bm;
        return analyzeIpc(trace, cfg);
    };

    double io1_stall_nobp = 0, ooo2_stall_pbp1 = 0;
    for (bool in_order : {true, false}) {
        for (unsigned w : widths) {
            double perf_pbp = ipc(in_order, w, true,
                                  BranchModel::Perfect);
            double perf_nobp = ipc(in_order, w, true, BranchModel::None);
            double stall_pbp = ipc(in_order, w, false,
                                   BranchModel::Perfect);
            double stall_pbp1 = ipc(in_order, w, false,
                                    BranchModel::PBP1);
            double stall_nobp = ipc(in_order, w, false,
                                    BranchModel::None);
            std::printf("%-6s %-6u | %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
                        in_order ? "IO" : "OOO", w, perf_pbp, perf_nobp,
                        stall_pbp, stall_pbp1, stall_nobp);
            if (in_order && w == 1)
                io1_stall_nobp = stall_nobp;
            if (!in_order && w == 2)
                ooo2_stall_pbp1 = stall_pbp1;
        }
    }

    std::printf("\nPaper's cost-benefit anchor: a 2-wide OOO core with "
                "1-branch prediction achieves\n%.2fx the IPC of the "
                "simple 1-wide in-order core (paper: ~2x at much higher "
                "complexity).\n", ooo2_stall_pbp1 / io1_stall_nobp);
    std::printf("1-wide in-order, stalls, no BP: %.2f IPC (the paper's "
                "chosen core sustains 83%%\nof this bound at line rate; "
                "see Table 3).\n", io1_stall_nobp);

    // Robustness check on the statistically generated trace.
    InstrTrace synth = generateFirmwareTrace(TraceGenConfig{});
    IlpConfig c1;
    c1.inOrder = true;
    c1.width = 1;
    c1.perfectPipeline = false;
    c1.branch = BranchModel::None;
    IlpConfig c2 = c1;
    c2.inOrder = false;
    c2.width = 2;
    c2.branch = BranchModel::PBP1;
    std::printf("\nStatistical-trace cross-check: IO1/noBP %.2f IPC, "
                "OOO2/PBP1 %.2f IPC (ratio %.2fx).\n",
                analyzeIpc(synth, c1), analyzeIpc(synth, c2),
                analyzeIpc(synth, c2) / analyzeIpc(synth, c1));
    return 0;
}
