/**
 * @file
 * Fault-storm soak: graceful degradation under combined injected
 * faults on a 64-flow duplex workload.
 *
 * Three rows on the same 6-core 200 MHz NIC:
 *
 *   fault_free  the baseline (plan disabled, all hooks absent)
 *   storm       wire bit-flips/truncations/runts, transient memory
 *               faults and lost doorbells at >= 1% of frames for the
 *               whole run
 *   recovery    the same storm confined to the warmup window; the
 *               measured window starts at storm end
 *
 * The soak asserts the degradation contracts from DESIGN.md §12 and
 * exits nonzero on any violation:
 *
 *   - zero corrupted payloads reach any flow validator (errors == 0)
 *   - the simulation never hangs (the liveness monitor guards every
 *     run-loop boundary; returning at all is the proof)
 *   - every injected fault is matched by its detection/recovery
 *     counter, and the stat tree agrees with the component counters
 *   - post-storm throughput recovers to >= 95% of the fault-free rate
 *     within the measured window
 *
 * --json[=path] writes a tengig-bench-v1 document (default
 * BENCH_fault_storm.json); --quick shrinks flows and windows for the
 * ctest smoke run.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

bool quick = false;
unsigned failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        ++failures;
        std::printf("  FAIL: %s\n", what);
    }
}

Tick
warmupWindow()
{
    return quick ? tickPerMs / 2 : 2 * tickPerMs;
}

Tick
measureWindow()
{
    return quick ? tickPerMs : 4 * tickPerMs;
}

unsigned
flowsPerDirection()
{
    return quick ? 8 : 64;
}

NicConfig
stormConfig()
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    unsigned flows = flowsPerDirection();
    cfg.txTraffic = TrafficProfile::uniform(
        flows, SizeModel::fixed(1472), ArrivalModel::paced(), 1.0,
        0xbe7c);
    cfg.rxTraffic = TrafficProfile::uniform(
        flows, SizeModel::fixed(1472), ArrivalModel::paced(), 1.0,
        0xbe7c);
    return cfg;
}

/** The storm mix: >= 1% of frames see a fault in each direction. */
void
armStorm(FaultPlan &p, Tick storm_start, Tick storm_end)
{
    p.stormStart = storm_start;
    p.stormEnd = storm_end;
    p.wireCrcRate = 0.010;      // per rx frame
    p.wireTruncateRate = 0.005;
    p.wireRuntRate = 0.005;
    p.txPoisonRate = 0.010;     // per tx frame
    p.memFaultRate = 0.004;     // per DMA transfer (~3 per frame)
    p.doorbellDropRate = 0.050; // per doorbell ring
    p.watchdogCycles = 50000;   // 250 us at 200 MHz
}

/** Fault counters appended to the JSON metrics for storm rows. */
obs::json::Value
faultMetrics(NicController &nic)
{
    using obs::json::Value;
    Value f = Value::object();
    const FaultInjector *inj = nic.faultInjector();
    if (!inj)
        return f;
    f.set("totalInjected", inj->totalInjected());
    f.set("wireCrc", inj->wireCrcInjected());
    f.set("wireTrunc", inj->wireTruncInjected());
    f.set("wireRunt", inj->wireRuntInjected());
    f.set("memFaults", inj->memFaultsInjected());
    f.set("memRetries", inj->memRetriesTaken());
    f.set("memDrops", inj->memDropsTaken());
    f.set("doorbellsLost", inj->doorbellsLost());
    f.set("doorbellRetries", inj->doorbellRetriesTaken());
    f.set("txPoisoned", inj->txFramesPoisoned());
    f.set("poisonSkips", inj->poisonSkipsTaken());
    return f;
}

void
checkNoCorruption(NicController &nic, const NicResults &r,
                  const char *row)
{
    std::printf("[%s] %.2f Gb/s duplex, %llu errors\n", row,
                r.totalUdpGbps,
                static_cast<unsigned long long>(r.errors));
    check(r.errors == 0, "validation errors (ordering/integrity)");
    check(nic.txFlowSink().integrityErrors() == 0,
          "corrupted payloads reached the wire-side flow validator");
    check(nic.rxFlowSink().integrityErrors() == 0,
          "corrupted payloads reached the host-side flow validator");
}

/** Every injected fault accounted for, stat tree included. */
void
checkAccounting(NicController &nic, const NicResults &r)
{
    const FaultInjector *inj = nic.faultInjector();
    check(inj != nullptr, "fault injector missing on a storm run");
    if (!inj)
        return;
    MacRx &rx = nic.macRxAssist();
    MacTx &tx = nic.macTxAssist();
    const obs::StatGroup &t = nic.statTree();

    // The storm really happened, at soak intensity.
    std::uint64_t window_frames = r.txFrames + r.rxFrames;
    check(inj->totalInjected() >= window_frames / 100,
          "storm intensity below 1% of frames");

    // Wire faults: injected == dropped at the MAC, class by class.
    check(inj->wireCrcInjected() == rx.crcDrops(),
          "CRC injections != MAC CRC drops");
    check(inj->wireTruncInjected() == rx.truncatedDrops(),
          "truncation injections != MAC truncation drops");
    check(inj->wireRuntInjected() == rx.runtDrops(),
          "runt injections != MAC runt drops");

    // Memory faults: each one became a retry or a drop, immediately.
    check(inj->memFaultsInjected() ==
              inj->memRetriesTaken() + inj->memDropsTaken(),
          "memory faults != retries + drops");

    // Poison: skips trail the marks by at most the in-flight slots.
    std::uint64_t poisoned = inj->txFramesPoisoned();
    std::uint64_t skips = inj->poisonSkipsTaken();
    check(skips <= poisoned, "more poison skips than poisoned frames");
    check(poisoned - skips <= nic.config().firmware.txSlots,
          "unskipped poisoned frames exceed the in-flight window");
    check(tx.framesSkipped() <= skips,
          "MAC skipped more frames than the firmware marked");

    // Doorbells: losses happened and the host retry path engaged.
    check(inj->doorbellsLost() > 0, "no doorbells lost during storm");
    check(inj->doorbellRetriesTaken() > 0, "no doorbell retries fired");

    // The stat tree mirrors the component counters.
    check(t.value("fault.wire.crc_injected") ==
              static_cast<double>(inj->wireCrcInjected()),
          "stat tree fault.wire.crc_injected mismatch");
    check(t.value("fault.mem.faults_injected") ==
              static_cast<double>(inj->memFaultsInjected()),
          "stat tree fault.mem.faults_injected mismatch");
    check(t.value("fault.doorbell.lost") ==
              static_cast<double>(inj->doorbellsLost()),
          "stat tree fault.doorbell.lost mismatch");
    check(t.value("fault.poison.skips") ==
              static_cast<double>(inj->poisonSkipsTaken()),
          "stat tree fault.poison.skips mismatch");
    check(t.value("fault.macRx.crc_drops") ==
              static_cast<double>(rx.crcDrops()),
          "stat tree fault.macRx.crc_drops mismatch");

    // The firmware watchdog sampled and saw no stalls: degraded, not
    // stuck.
    const FirmwareWatchdog *wd = nic.firmwareWatchdog();
    check(wd && wd->checksRun() > 0, "watchdog never sampled");
    check(wd && wd->stallsDetected() == 0,
          "watchdog flagged a core stall during the storm");
}

} // namespace

int
main(int argc, char **argv)
{
    quick = obs::hasFlag(argc, argv, "--quick");
    Tick warmup = warmupWindow();
    Tick measure = measureWindow();

    std::printf("Fault-storm soak: %u flows/direction duplex, "
                "6 cores @ 200 MHz\n\n",
                flowsPerDirection());

    obs::BenchReport report("fault_storm");
    auto addRow = [&](const char *name, NicController &nic,
                      const NicResults &r, const char *storm_window) {
        obs::json::Value cfg = obs::json::Value::object();
        cfg.set("flowsPerDirection", flowsPerDirection());
        cfg.set("stormWindow", storm_window);
        obs::json::Value m = nicRunMetrics(r);
        m.set("fault", faultMetrics(nic));
        report.addRow(name, std::move(cfg), std::move(m));
    };

    // Row 1: the baseline.  No fault plan, no hooks, nothing to
    // account for.
    NicConfig base = stormConfig();
    NicController baseline(base);
    NicResults r0 = baseline.run(warmup, measure);
    checkNoCorruption(baseline, r0, "fault_free");
    check(baseline.faultInjector() == nullptr,
          "fault hooks present on a disabled plan");
    addRow("fault_free", baseline, r0, "none");

    // Row 2: the storm rages for the whole run.  The NIC sheds the
    // damaged work and keeps every delivered byte intact.
    NicConfig stormy = stormConfig();
    armStorm(stormy.faults, 0, 0);
    NicController storm(stormy);
    NicResults r1 = storm.run(warmup, measure);
    checkNoCorruption(storm, r1, "storm");
    checkAccounting(storm, r1);
    check(r1.totalUdpGbps > 0.5 * r0.totalUdpGbps,
          "storm throughput collapsed (graceful degradation failed)");
    addRow("storm", storm, r1, "whole run");

    // Row 3: the storm ends with the warmup; the measured window is
    // the bounded recovery period.
    NicConfig healing = stormConfig();
    armStorm(healing.faults, 0, warmup);
    NicController recovery(healing);
    NicResults r2 = recovery.run(warmup, measure);
    checkNoCorruption(recovery, r2, "recovery");
    check(r2.totalUdpGbps >= 0.95 * r0.totalUdpGbps,
          "post-storm throughput below 95% of the fault-free rate");
    addRow("recovery", recovery, r2, "warmup only");

    std::printf("\nrecovery: %.2f Gb/s vs fault-free %.2f Gb/s "
                "(%.1f%%)\n",
                r2.totalUdpGbps, r0.totalUdpGbps,
                100.0 * r2.totalUdpGbps / r0.totalUdpGbps);

    if (auto path = obs::jsonPathFromArgs(argc, argv, "fault_storm")) {
        report.write(*path);
        std::printf("wrote %s (%zu rows)\n", path->c_str(),
                    report.rows());
    }

    if (failures) {
        std::printf("\n%u contract violation(s)\n", failures);
        return 1;
    }
    std::printf("\nall degradation contracts held\n");
    return 0;
}
