/**
 * @file
 * Figure 8: full-duplex throughput for various UDP datagram sizes --
 * software-only at 200 MHz vs RMW-enhanced at 166 MHz, 6 cores each.
 *
 * Paper shape: both configurations track the (size-dependent) Ethernet
 * limit at large datagrams; as datagrams shrink, rising frame rates
 * exhaust the processors and both saturate at roughly the same peak
 * frame rate (~2.2 M frames/s), with a visible gap around 800-byte
 * datagrams where the RMW configuration's slightly lower peak frame
 * rate shows.
 *
 * --jobs=N runs the sweep points on N worker threads (identical
 * output; each point is an isolated deterministic simulation).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

NicResults
runPoint(unsigned payload, bool rmw)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = rmw ? 166.0 : 200.0;
    cfg.firmware.rmwEnhanced = rmw;
    cfg.txPayloadBytes = payload;
    cfg.rxPayloadBytes = payload;
    NicController nic(cfg);
    return nic.run(warmupTicks, measureTicks);
}

} // namespace

int
main(int argc, char **argv)
{
    printHeader("Figure 8: duplex throughput vs UDP datagram size");

    const std::vector<unsigned> sizes = {18, 100, 200, 400, 600, 800,
                                         1000, 1200, 1472};
    // Two runs (software-only, RMW-enhanced) per size, swept together.
    std::vector<NicResults> results = runSweep(
        jobsFromArgs(argc, argv), sizes.size() * 2, [&](std::size_t i) {
            return runPoint(sizes[i / 2], i % 2 == 1);
        });

    std::printf("%-8s | %8s | %13s | %13s | %10s | %10s\n", "UDP B",
                "limit", "SW@200 Gb/s", "RMW@166 Gb/s", "SW Mf/s",
                "RMW Mf/s");
    std::printf("%.*s\n", 76,
                "--------------------------------------------------------"
                "--------------------");

    double sw_peak_fps = 0, rmw_peak_fps = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        unsigned p = sizes[i];
        const NicResults &sw = results[i * 2];
        const NicResults &rmw = results[i * 2 + 1];
        double sw_fps = (sw.txFps + sw.rxFps) / 1e6;
        double rmw_fps = (rmw.txFps + rmw.rxFps) / 1e6;
        sw_peak_fps = std::max(sw_peak_fps, sw_fps);
        rmw_peak_fps = std::max(rmw_peak_fps, rmw_fps);
        std::printf("%-8u | %8.2f | %13.2f | %13.2f | %10.2f | %10.2f\n",
                    p, 2 * lineRateUdpGbps(p), sw.totalUdpGbps,
                    rmw.totalUdpGbps, sw_fps, rmw_fps);
    }

    std::printf("\nPeak total frame rate: SW %.2f Mf/s, RMW %.2f Mf/s "
                "(paper: both saturate near 2.2 Mf/s,\nwith the RMW "
                "configuration's peak slightly lower due to "
                "lock-contention imbalance).\n", sw_peak_fps,
                rmw_peak_fps);
    return 0;
}
