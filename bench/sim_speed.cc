/**
 * @file
 * Simulator-speed microbench: host-side event throughput per config.
 *
 * Every figure/table reproduction funnels through the one
 * discrete-event kernel, so its host-side throughput bounds how large
 * a parameter sweep is affordable.  This bench times representative
 * NIC configurations and reports host events/sec and simulated
 * Mticks/sec (1 Mtick = 1 µs of simulated time) per config, writing a
 * tengig-bench-v1 document (default BENCH_sim_speed.json) that seeds
 * the simulator-performance trajectory.
 *
 * Wall-clock numbers are machine-dependent by nature; the committed
 * artifact is meaningful as a ratio against its predecessor on the
 * same machine, not as an absolute.
 *
 * --quick shrinks the windows for smoke tests; --json[=path] writes
 * the report.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

struct SpeedPoint
{
    std::string name;       //!< row label
    std::string workload;   //!< "duplex", "imix" or "rx-light"
    unsigned cores;
    double cpuMhz;
    bool taskLevel;
    bool idleSleep;
    unsigned payloadBytes = 0; //!< explicit duplex payload (0 = default)
};

struct SpeedResult
{
    double wallMs = 0.0;
    std::uint64_t executedEvents = 0;
    Tick simTicks = 0;
    double eventsPerSec = 0.0;
    double simMticksPerSec = 0.0;
    double totalUdpGbps = 0.0;
    std::uint64_t frames = 0;

    /// Op-cache effectiveness over the run (zeros when disabled).
    std::uint64_t opcacheHits = 0;
    std::uint64_t opcacheMisses = 0;
    double opcacheHitRate = 0.0;
};

void
readOpcache(const NicController &nic, SpeedResult &r)
{
    if (const obs::StatGroup *g = nic.statTree().findGroup("opcache")) {
        r.opcacheHits = static_cast<std::uint64_t>(g->value("hits"));
        r.opcacheMisses = static_cast<std::uint64_t>(g->value("misses"));
        std::uint64_t total = r.opcacheHits + r.opcacheMisses;
        if (total)
            r.opcacheHitRate =
                static_cast<double>(r.opcacheHits) / total;
    }
}

SpeedResult
measure(const SpeedPoint &p, bool quick)
{
    NicConfig cfg;
    cfg.cores = p.cores;
    cfg.cpuMhz = p.cpuMhz;
    cfg.taskLevelFirmware = p.taskLevel;
    cfg.idleSleep = p.idleSleep;

    SpeedResult r;
    if (p.workload == "rx-light") {
        // Low receive load with long quiescent gaps between frames:
        // the workload where idle-core sleep pays.
        cfg.rxOfferedRate = 0.02;
        NicController nic(cfg);
        unsigned frames = quick ? 20 : 120;
        Tick limit = (quick ? 4 : 16) * tickPerMs;
        auto t0 = std::chrono::steady_clock::now();
        NicResults res = nic.runRxOnly(frames, limit);
        auto t1 = std::chrono::steady_clock::now();
        r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                       .count();
        r.executedEvents = nic.eventQueue().executedEvents();
        r.simTicks = nic.eventQueue().curTick();
        r.totalUdpGbps = res.totalUdpGbps;
        r.frames = res.rxFrames;
        readOpcache(nic, r);
    } else {
        if (p.workload == "imix") {
            // Mixed-size multi-flow duplex: the payload-heavy stress on
            // the zero-copy data path with per-flow validation on top.
            cfg.txTraffic = TrafficProfile::imixPoisson(8, 1.0, 0x51);
            cfg.rxTraffic = TrafficProfile::imixPoisson(8, 1.0, 0x52);
        } else if (p.payloadBytes) {
            cfg.txPayloadBytes = p.payloadBytes;
            cfg.rxPayloadBytes = p.payloadBytes;
        }
        NicController nic(cfg);
        Tick warmup = quick ? tickPerMs / 4 : tickPerMs / 2;
        Tick window = quick ? tickPerMs / 2 : 2 * tickPerMs;
        auto t0 = std::chrono::steady_clock::now();
        NicResults res = nic.run(warmup, window);
        auto t1 = std::chrono::steady_clock::now();
        r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                       .count();
        r.executedEvents = nic.eventQueue().executedEvents();
        r.simTicks = nic.eventQueue().curTick();
        r.totalUdpGbps = res.totalUdpGbps;
        r.frames = res.txFrames + res.rxFrames;
        readOpcache(nic, r);
    }
    double wall_s = r.wallMs / 1e3;
    if (wall_s > 0) {
        r.eventsPerSec = static_cast<double>(r.executedEvents) / wall_s;
        r.simMticksPerSec =
            static_cast<double>(r.simTicks) / 1e6 / wall_s;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    printHeader("Simulator speed: host event throughput per config");

    bool quick = obs::hasFlag(argc, argv, "--quick");

    std::vector<SpeedPoint> points = {
        {"duplex 6c 200MHz (default)", "duplex", 6, 200, false, false},
        {"duplex 6c 200MHz 1472B", "duplex", 6, 200, false, false, 1472},
        {"imix 6c 200MHz 8 flows", "imix", 6, 200, false, false},
        {"duplex 2c 200MHz", "duplex", 2, 200, false, false},
        {"duplex 6c 200MHz task-level", "duplex", 6, 200, true, false},
        {"rx-light 1c 200MHz", "rx-light", 1, 200, false, false},
        {"rx-light 1c 200MHz +sleep", "rx-light", 1, 200, false, true},
    };

    obs::BenchReport report("sim_speed");
    std::printf("%-30s %12s %12s %10s %8s\n", "config", "events/s",
                "Mticks/s", "events", "wall ms");
    std::printf("%.*s\n", 76,
                "----------------------------------------------------"
                "------------------------");
    for (const SpeedPoint &p : points) {
        SpeedResult r = measure(p, quick);
        std::printf("%-30s %12.0f %12.2f %10llu %8.1f\n",
                    p.name.c_str(), r.eventsPerSec, r.simMticksPerSec,
                    static_cast<unsigned long long>(r.executedEvents),
                    r.wallMs);

        obs::json::Value cfg = obs::json::Value::object();
        cfg.set("workload", p.workload);
        cfg.set("cores", p.cores);
        cfg.set("cpuMhz", p.cpuMhz);
        cfg.set("taskLevelFirmware", p.taskLevel);
        cfg.set("idleSleep", p.idleSleep);
        if (p.payloadBytes)
            cfg.set("payloadBytes", p.payloadBytes);

        obs::json::Value m = obs::json::Value::object();
        m.set("hostEventsPerSec", r.eventsPerSec);
        m.set("simMticksPerSec", r.simMticksPerSec);
        m.set("executedEvents", r.executedEvents);
        m.set("wallMs", r.wallMs);
        m.set("totalUdpGbps", r.totalUdpGbps);
        m.set("frames", r.frames);
        m.set("opcacheHits", r.opcacheHits);
        m.set("opcacheMisses", r.opcacheMisses);
        m.set("opcacheHitRate", r.opcacheHitRate);
        report.addRow(p.name, std::move(cfg), std::move(m));
    }

    if (auto path = obs::jsonPathFromArgs(argc, argv, "sim_speed")) {
        report.write(*path);
        std::printf("\nwrote %s (%zu rows)\n", path->c_str(),
                    report.rows());
    }
    return 0;
}
