/**
 * @file
 * Table 1: average instructions and data accesses to send and receive
 * one Ethernet frame (ideal firmware, no parallelization overheads).
 *
 * Run on a single core in ideal mode (no locks, no ordering flags),
 * processing full-duplex maximum-sized frames.  The paper's prose pins
 * the aggregates this table must satisfy: at the 812,744 frames/s line
 * rate, sending requires 229 MIPS + 2.6 Gb/s of data accesses and
 * receiving 206 MIPS + 2.2 Gb/s, for a total of 435 MIPS and 4.8 Gb/s
 * of control bandwidth (plus 39.5 Gb/s of frame-data bandwidth).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

int
main()
{
    printHeader("Table 1: ideal per-frame task requirements");

    NicConfig cfg;
    cfg.cores = 1;
    cfg.cpuMhz = 800.0; // enough compute to keep the ideal run busy
    cfg.firmware.idealMode = true;
    NicController nic(cfg);
    NicResults r = nic.run(warmupTicks, measureTicks);

    std::printf("%-30s | %14s | %14s\n", "Function", "Instructions",
                "Data Accesses");
    std::printf("%.*s\n", 66,
                "----------------------------------------------------"
                "--------------");
    const FuncTag rows[] = {FuncTag::FetchSendBd, FuncTag::SendFrame,
                            FuncTag::FetchRecvBd, FuncTag::RecvFrame};
    double send_instr = 0, send_mem = 0, recv_instr = 0, recv_mem = 0;
    for (FuncTag t : rows) {
        ProfileRow p = perFrame(r, t);
        std::printf("%-30s | %14.2f | %14.2f\n", funcTagName(t),
                    p.instructions, p.memAccesses);
        if (t == FuncTag::FetchSendBd || t == FuncTag::SendFrame) {
            send_instr += p.instructions;
            send_mem += p.memAccesses;
        } else {
            recv_instr += p.instructions;
            recv_mem += p.memAccesses;
        }
    }

    const double fps = lineRateFps(ethMaxFrameBytes);
    std::printf("\nDerived requirements at the %.0f frames/s line "
                "rate:\n", fps);
    std::printf("  send:    %6.1f MIPS (paper 229), %4.2f Gb/s data "
                "(paper 2.6)\n", send_instr * fps / 1e6,
                send_mem * fps * 32 / 1e9);
    std::printf("  receive: %6.1f MIPS (paper 206), %4.2f Gb/s data "
                "(paper 2.2)\n", recv_instr * fps / 1e6,
                recv_mem * fps * 32 / 1e9);
    std::printf("  total:   %6.1f MIPS (paper 435), %4.2f Gb/s data "
                "(paper 4.8)\n",
                (send_instr + recv_instr) * fps / 1e6,
                (send_mem + recv_mem) * fps * 32 / 1e9);
    std::printf("  frame-data bandwidth consumed: %.1f Gb/s (paper "
                "39.5 required)\n", r.sdramGbps);
    return 0;
}
