/**
 * @file
 * Mixed-size duplex throughput: fixed-size streams vs. realistic
 * multi-flow mixes.
 *
 * The paper evaluates fixed-size workloads (Fig. 8 sweeps the size).
 * This bench drives the same 6-core 200 MHz NIC with flow-level
 * mixes -- bimodal request/response and the classic IMIX -- and
 * compares achieved duplex goodput against both the fixed-size
 * baseline and each mix's theoretical UDP goodput limit at 10 Gb/s
 * line rate.  Mixed traffic lowers the ceiling (more frames per byte
 * moved), which is exactly the per-frame-cost regime where the
 * paper's small-frame results live.
 */

#include <cstdio>

#include "nic/controller.hh"

using namespace tengig;

namespace {

/** UDP goodput limit at line rate for a per-frame size model. */
double
goodputLimitGbps(const SizeModel &size)
{
    // mean payload bits per mean wire time.
    return size.meanPayloadBytes() * 8.0 /
           (size.meanWireTicks() / tickPerSec) / 1e9;
}

void
run(const char *name, const SizeModel &size, const ArrivalModel &arrival)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txTraffic = TrafficProfile::uniform(64, size,
                                            ArrivalModel::paced(), 1.0,
                                            0xbe7c);
    cfg.rxTraffic = TrafficProfile::uniform(64, size, arrival, 1.0,
                                            0xbe7c);
    NicController nic(cfg);
    NicResults r = nic.run(tickPerMs, 3 * tickPerMs);

    double limit = 2.0 * goodputLimitGbps(size);
    std::printf("%-22s | %7.2f | %8.2f | %5.1f%% | %9.0f | %6llu\n",
                name, r.totalUdpGbps, limit,
                100.0 * r.totalUdpGbps / limit, r.txFps + r.rxFps,
                static_cast<unsigned long long>(r.errors));
}

void
runFixedBaseline(const char *name, unsigned payload)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txPayloadBytes = payload;
    cfg.rxPayloadBytes = payload;
    NicController nic(cfg);
    NicResults r = nic.run(tickPerMs, 3 * tickPerMs);

    double limit = 2.0 * lineRateUdpGbps(payload);
    std::printf("%-22s | %7.2f | %8.2f | %5.1f%% | %9.0f | %6llu\n",
                name, r.totalUdpGbps, limit,
                100.0 * r.totalUdpGbps / limit, r.txFps + r.rxFps,
                static_cast<unsigned long long>(r.errors));
}

} // namespace

int
main()
{
    std::printf("Duplex goodput under mixed frame sizes "
                "(64 flows/direction, 6 cores @ 200 MHz):\n\n");
    std::printf("%-22s | %7s | %8s | %6s | %9s | %6s\n", "workload",
                "Gb/s", "limit", "of max", "frames/s", "errors");

    runFixedBaseline("fixed 1472 (paper)", 1472);
    runFixedBaseline("fixed 594-wire", 594 - framingOverheadBytes);
    run("bimodal 90/1472", SizeModel::bimodal(90, 1472, 0.5),
        ArrivalModel::paced());
    run("bimodal + poisson", SizeModel::bimodal(90, 1472, 0.5),
        ArrivalModel::poisson());
    run("imix + poisson", SizeModel::imix(), ArrivalModel::poisson());
    run("imix + on/off bursts", SizeModel::imix(),
        ArrivalModel::onOff(0.25, 32.0));
    return 0;
}
