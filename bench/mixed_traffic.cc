/**
 * @file
 * Mixed-size duplex throughput: fixed-size streams vs. realistic
 * multi-flow mixes.
 *
 * The paper evaluates fixed-size workloads (Fig. 8 sweeps the size).
 * This bench drives the same 6-core 200 MHz NIC with flow-level
 * mixes -- bimodal request/response and the classic IMIX -- and
 * compares achieved duplex goodput against both the fixed-size
 * baseline and each mix's theoretical UDP goodput limit at 10 Gb/s
 * line rate.  Mixed traffic lowers the ceiling (more frames per byte
 * moved), which is exactly the per-frame-cost regime where the
 * paper's small-frame results live.
 *
 * With --json[=path] every workload row is also written as a
 * tengig-bench-v1 document (metrics from bench::nicRunMetrics,
 * including per-core IPC and the rx latency percentiles), default
 * BENCH_mixed_traffic.json.  --quick shrinks the flow count and the
 * measurement window so the ctest smoke test finishes fast.  --jobs=N
 * runs the workloads on N worker threads (identical output; each
 * workload is an isolated deterministic simulation).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

bool quick = false;

Tick
measureWindow()
{
    return quick ? tickPerMs / 2 : 3 * tickPerMs;
}

unsigned
flowsPerDirection()
{
    return quick ? 8 : 64;
}

/** UDP goodput limit at line rate for a per-frame size model. */
double
goodputLimitGbps(const SizeModel &size)
{
    // mean payload bits per mean wire time.
    return size.meanPayloadBytes() * 8.0 /
           (size.meanWireTicks() / tickPerSec) / 1e9;
}

void
printRow(const char *name, const NicResults &r, double limit)
{
    std::printf("%-22s | %7.2f | %8.2f | %5.1f%% | %9.0f | %6llu\n",
                name, r.totalUdpGbps, limit,
                100.0 * r.totalUdpGbps / limit, r.txFps + r.rxFps,
                static_cast<unsigned long long>(r.errors));
}

void
addRow(obs::BenchReport &report, const char *name, const NicResults &r,
       double limit, const char *size_model, const char *arrival_model)
{
    obs::json::Value cfg = obs::json::Value::object();
    cfg.set("sizeModel", size_model);
    cfg.set("arrivalModel", arrival_model);
    cfg.set("flowsPerDirection", flowsPerDirection());
    cfg.set("duplexGoodputLimitGbps", limit);
    report.addRow(name, std::move(cfg), nicRunMetrics(r));
}

NicResults
runMix(const SizeModel &size, const ArrivalModel &arrival)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txTraffic = TrafficProfile::uniform(flowsPerDirection(), size,
                                            ArrivalModel::paced(), 1.0,
                                            0xbe7c);
    cfg.rxTraffic = TrafficProfile::uniform(flowsPerDirection(), size,
                                            arrival, 1.0, 0xbe7c);
    NicController nic(cfg);
    return nic.run(tickPerMs, measureWindow());
}

NicResults
runFixed(unsigned payload)
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    cfg.txPayloadBytes = payload;
    cfg.rxPayloadBytes = payload;
    NicController nic(cfg);
    return nic.run(tickPerMs, measureWindow());
}

/** One sweep point: how to simulate it and how to label the output. */
struct Workload
{
    const char *name;
    std::function<NicResults()> sim;
    double limit;
    const char *sizeModel;
    const char *arrivalName;
};

} // namespace

int
main(int argc, char **argv)
{
    quick = obs::hasFlag(argc, argv, "--quick");

    std::vector<Workload> work;
    auto fixed = [&](const char *name, unsigned payload) {
        work.push_back({name, [payload] { return runFixed(payload); },
                        2.0 * lineRateUdpGbps(payload), "fixed",
                        "paced"});
    };
    auto mix = [&](const char *name, SizeModel size, ArrivalModel arrival,
                   const char *arrival_name) {
        work.push_back({name,
                        [size, arrival] { return runMix(size, arrival); },
                        2.0 * goodputLimitGbps(size), "mix",
                        arrival_name});
    };
    fixed("fixed 1472 (paper)", 1472);
    fixed("fixed 594-wire", 594 - framingOverheadBytes);
    mix("bimodal 90/1472", SizeModel::bimodal(90, 1472, 0.5),
        ArrivalModel::paced(), "paced");
    mix("bimodal + poisson", SizeModel::bimodal(90, 1472, 0.5),
        ArrivalModel::poisson(), "poisson");
    if (!quick) {
        mix("imix + poisson", SizeModel::imix(), ArrivalModel::poisson(),
            "poisson");
        mix("imix + on/off bursts", SizeModel::imix(),
            ArrivalModel::onOff(0.25, 32.0), "onOff");
    }

    std::vector<NicResults> results = runSweep(
        jobsFromArgs(argc, argv), work.size(),
        [&](std::size_t i) { return work[i].sim(); });

    std::printf("Duplex goodput under mixed frame sizes "
                "(%u flows/direction, 6 cores @ 200 MHz):\n\n",
                flowsPerDirection());
    std::printf("%-22s | %7s | %8s | %6s | %9s | %6s\n", "workload",
                "Gb/s", "limit", "of max", "frames/s", "errors");

    obs::BenchReport report("mixed_traffic");
    for (std::size_t i = 0; i < work.size(); ++i) {
        const Workload &w = work[i];
        printRow(w.name, results[i], w.limit);
        addRow(report, w.name, results[i], w.limit, w.sizeModel,
               w.arrivalName);
    }

    if (auto path = obs::jsonPathFromArgs(argc, argv, "mixed_traffic")) {
        report.write(*path);
        std::printf("\nwrote %s (%zu rows)\n", path->c_str(),
                    report.rows());
    }
    return 0;
}
