/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrates
 * themselves: event-queue throughput, scratchpad arbitration, SDRAM
 * bursts, coherence simulation, and the ILP scheduler.  These guard
 * the simulator's own performance (the table/figure benches sweep
 * dozens of multi-millisecond simulations).
 */

#include <benchmark/benchmark.h>

#include "mem/scratchpad.hh"
#include "mem/sdram.hh"
#include "sim/event_queue.hh"
#include "src/coherence/coherent_cache.hh"
#include "src/ilp/ilp_analyzer.hh"

using namespace tengig;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_EventQueueSelfSchedulingChain(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int count = 0;
        std::function<void()> tick = [&] {
            if (++count < n)
                eq.scheduleIn(1000, tick);
        };
        eq.schedule(0, tick);
        eq.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSelfSchedulingChain)->Arg(100000);

void
BM_ScratchpadContendedAccesses(benchmark::State &state)
{
    const unsigned requesters = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        ClockDomain cpu("cpu", 5000);
        Scratchpad spad(eq, cpu, requesters, 64 * 1024, 4);
        int done = 0;
        eq.schedule(0, [&] {
            for (unsigned r = 0; r < requesters; ++r)
                for (int i = 0; i < 200; ++i)
                    spad.access(r, static_cast<Addr>(4 * i), SpadOp::Read,
                                0, [&done](const Scratchpad::Response &) {
                                    ++done;
                                });
        });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 200);
}
BENCHMARK(BM_ScratchpadContendedAccesses)->Arg(2)->Arg(10);

void
BM_SdramFrameBursts(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        ClockDomain bus("membus", 2000);
        GddrSdram ram(eq, bus, GddrSdram::Config{});
        int done = 0;
        std::function<void(unsigned, int)> issue = [&](unsigned who,
                                                       int n) {
            if (n == 0)
                return;
            ram.request(who, (who % 4) * 1024 * 1024 +
                        static_cast<Addr>(n % 128) * 1536, 1518,
                        who % 2 == 0, [&, who, n] {
                            ++done;
                            issue(who, n - 1);
                        });
        };
        eq.schedule(0, [&] {
            for (unsigned w = 0; w < 4; ++w)
                issue(w, 100);
        });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_SdramFrameBursts);

void
BM_CoherenceTrace(benchmark::State &state)
{
    // Synthetic trace with NIC-like sharing.
    coherence::Trace trace;
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        trace.push_back(coherence::AccessRecord{
            static_cast<std::uint8_t>(rng.below(8)), rng.chance(0.3),
            4 * rng.below(8192)});
    }
    for (auto _ : state) {
        coherence::CoherentCacheSystem sys(8, 8 * 1024, 16,
                                           coherence::Protocol::MESI);
        sys.run(trace);
        benchmark::DoNotOptimize(sys.stats().hits);
    }
    state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_CoherenceTrace);

void
BM_IlpSchedule(benchmark::State &state)
{
    ilp::TraceGenConfig tc;
    tc.instructions = 100000;
    ilp::InstrTrace trace = ilp::generateFirmwareTrace(tc);
    for (auto _ : state) {
        ilp::IlpConfig cfg;
        cfg.inOrder = false;
        cfg.width = 4;
        cfg.perfectPipeline = false;
        cfg.branch = ilp::BranchModel::PBP1;
        double ipc = ilp::analyzeIpc(trace, cfg);
        benchmark::DoNotOptimize(ipc);
    }
    state.SetItemsProcessed(state.iterations() * tc.instructions);
}
BENCHMARK(BM_IlpSchedule);

} // namespace

BENCHMARK_MAIN();
