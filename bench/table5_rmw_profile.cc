/**
 * @file
 * Table 5: execution profiles comparing frame-ordering methods.
 *
 * Prints per-packet instruction and memory-access counts for every
 * firmware function under three configurations: ideal (single core, no
 * parallelization overhead -- Table 1's reference), software-only
 * lock-based ordering, and RMW-enhanced ordering, all processing
 * maximum-sized frames.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

NicResults
runConfig(bool ideal, bool rmw)
{
    NicConfig cfg;
    cfg.cores = ideal ? 1 : 6;
    cfg.cpuMhz = 200.0;
    cfg.firmware.idealMode = ideal;
    cfg.firmware.rmwEnhanced = rmw;
    NicController nic(cfg);
    NicResults r = nic.run(warmupTicks, measureTicks);
    if (std::getenv("TENGIG_DIAG")) {
        const FwState &st = nic.firmwareState();
        double f = framesPerDirection(r);
        std::printf("[diag %s] per-frame invocations: fsbd %.3f sf %.3f "
                    "ptxd %.3f txcommit %.3f (%.2f fr/pass) ptxc %.3f | "
                    "frbd %.3f rf %.3f prxd %.3f rxcommit %.3f "
                    "(%.2f fr/pass)\n",
                    ideal ? "ideal" : (rmw ? "rmw" : "sw"),
                    st.invFetchSendBd / f, st.invSendFrame / f,
                    st.invProcessTxDma / f, st.invTxCommitPasses / f,
                    st.invTxCommitPasses
                        ? double(st.invTxCommitted) / st.invTxCommitPasses
                        : 0.0,
                    st.invProcessTxComplete / f, st.invFetchRecvBd / f,
                    st.invRecvFrame / f, st.invProcessRxDma / f,
                    st.invRxCommitPasses / f,
                    st.invRxCommitPasses
                        ? double(st.invRxCommitted) / st.invRxCommitPasses
                        : 0.0);
        for (unsigned l = 0; l < numFwLocks; ++l)
            std::printf("[diag] lock %u acquires/frame %.3f "
                        "spins/frame %.3f\n", l,
                        st.lockAcquires[l] / (2 * f),
                        st.lockSpins[l] / (2 * f));
    }
    return r;
}

} // namespace

int
main()
{
    printHeader("Table 5: execution profiles comparing frame-ordering "
                "methods (per packet)");

    NicResults ideal = runConfig(true, false);
    NicResults sw = runConfig(false, false);
    NicResults rmw = runConfig(false, true);

    std::printf("%-30s | %21s | %21s\n", "",
                "Instructions per Packet", "Mem Accesses per Packet");
    std::printf("%-30s | %6s %7s %7s | %6s %7s %7s\n", "Function",
                "Ideal", "SWonly", "RMW", "Ideal", "SWonly", "RMW");
    std::printf("%.*s\n", 102,
                "-----------------------------------------------------"
                "---------------------------------------------------");

    const FuncTag rows[] = {
        FuncTag::FetchSendBd, FuncTag::SendFrame, FuncTag::SendDispatch,
        FuncTag::SendLock, FuncTag::FetchRecvBd, FuncTag::RecvFrame,
        FuncTag::RecvDispatch, FuncTag::RecvLock,
    };
    double sw_ord[2] = {0, 0}, rmw_ord[2] = {0, 0};
    double sw_ord_mem[2] = {0, 0}, rmw_ord_mem[2] = {0, 0};
    for (FuncTag t : rows) {
        ProfileRow i = perFrame(ideal, t);
        ProfileRow s = perFrame(sw, t);
        ProfileRow m = perFrame(rmw, t);
        std::printf("%-30s | %6.1f %7.1f %7.1f | %6.1f %7.1f %7.1f\n",
                    funcTagName(t), i.instructions, s.instructions,
                    m.instructions, i.memAccesses, s.memAccesses,
                    m.memAccesses);
        if (t == FuncTag::SendDispatch) {
            sw_ord[0] = s.instructions;
            rmw_ord[0] = m.instructions;
            sw_ord_mem[0] = s.memAccesses;
            rmw_ord_mem[0] = m.memAccesses;
        }
        if (t == FuncTag::RecvDispatch) {
            sw_ord[1] = s.instructions;
            rmw_ord[1] = m.instructions;
            sw_ord_mem[1] = s.memAccesses;
            rmw_ord_mem[1] = m.memAccesses;
        }
    }

    std::printf("\nRMW effect on dispatch-and-ordering (paper: "
                "-51.5%% send / -30.8%% recv instructions,\n"
                "-65.0%% / -35.2%% memory accesses):\n");
    std::printf("  send: instructions %+.1f%%, accesses %+.1f%%\n",
                100.0 * (rmw_ord[0] - sw_ord[0]) / sw_ord[0],
                100.0 * (rmw_ord_mem[0] - sw_ord_mem[0]) / sw_ord_mem[0]);
    std::printf("  recv: instructions %+.1f%%, accesses %+.1f%%\n",
                100.0 * (rmw_ord[1] - sw_ord[1]) / sw_ord[1],
                100.0 * (rmw_ord_mem[1] - sw_ord_mem[1]) / sw_ord_mem[1]);

    std::printf("\nThroughput check: SW %.2f Gb/s, RMW %.2f Gb/s "
                "(duplex limit %.2f)\n",
                sw.totalUdpGbps, rmw.totalUdpGbps,
                2 * lineRateUdpGbps(udpMaxPayloadBytes));
    return 0;
}
