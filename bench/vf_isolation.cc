/**
 * @file
 * Virtual-function isolation soak: blast-radius proof for the vnic
 * subsystem (DESIGN.md §13).
 *
 * Three rows on the same 6-core 200 MHz NIC:
 *
 *   solo_victim    a rate-contracted tenant (2 Gb/s tx ceiling) runs
 *                  alone: its solo goodput is the isolation baseline
 *   storm_neighbor the same victim shares the NIC with an unlimited
 *                  aggressor whose tenant-private fault plan injects
 *                  >= 1% wire/memory/doorbell/poison faults for the
 *                  whole run
 *   weighted_fair  three backlogged unlimited tenants at DRR weights
 *                  1:2:4 split the transmit path
 *
 * The soak asserts the isolation contracts and exits nonzero on any
 * violation:
 *
 *   - the victim's measured tx and rx goodput under the neighbor
 *     storm stay >= 95% of its solo baseline (bounded blast radius)
 *   - the victim's fault counters stay exactly zero: a storm armed on
 *     one tenant never injects into -- or consumes randomness from --
 *     another tenant's streams
 *   - the aggressor's faults are fully accounted per tenant (memory
 *     faults == retries + drops; wire injections == MAC drops class
 *     by class; poison skips trail marks by at most the in-flight
 *     window) and zero corrupted payloads reach any validator
 *   - the weighted row's delivered tx shares match the DRR weights
 *     within 5% relative error, and per-VF attribution is complete
 *     (the per-tenant frame counts sum to the run totals)
 *
 * --json[=path] writes a tengig-bench-v1 document (default
 * BENCH_vf_isolation.json); --quick shrinks flows and windows for the
 * ctest smoke run.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "vnic/vnic.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

bool quick = false;
unsigned failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        ++failures;
        std::printf("  FAIL: %s\n", what);
    }
}

Tick
warmupWindow()
{
    return quick ? tickPerMs / 2 : 2 * tickPerMs;
}

Tick
measureWindow()
{
    return quick ? tickPerMs : 4 * tickPerMs;
}

unsigned
flowsPerVf()
{
    return quick ? 4 : 8;
}

constexpr double victimTxGbps = 2.0;
constexpr double victimRxRate = 0.15; //!< fraction of line rate
constexpr double aggressorRxRate = 0.35;

NicConfig
vnicBase()
{
    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    // Keep the shared host send ring shallow: a deep ring is one long
    // FIFO whose residence time (~1.2 ms at 1024 frames) dwarfs the
    // measurement window, so the window would measure the warmup-era
    // ring contents instead of steady-state arbitration.  128 frames
    // (~150 us residence) reaches steady state well inside warmup.
    cfg.sendRingFrames = 128;
    return cfg;
}

VfConfig
victimVf()
{
    VfConfig v;
    v.name = "victim";
    v.weight = 1.0;
    v.txRateGbps = victimTxGbps;
    v.txTraffic = TrafficProfile::uniform(
        flowsPerVf(), SizeModel::fixed(1472), ArrivalModel::paced(),
        1.0, 0x71c71);
    v.rxTraffic = TrafficProfile::uniform(
        flowsPerVf(), SizeModel::fixed(1472), ArrivalModel::paced(),
        victimRxRate, 0x71c72);
    return v;
}

/** The neighbor: no contracts, saturating tx, and a private storm at
 *  >= 1% of frames across every fault class. */
VfConfig
aggressorVf()
{
    VfConfig v;
    v.name = "aggressor";
    v.weight = 1.0;
    v.txTraffic = TrafficProfile::uniform(
        flowsPerVf(), SizeModel::fixed(1472), ArrivalModel::paced(),
        1.0, 0xa66e1);
    v.rxTraffic = TrafficProfile::uniform(
        flowsPerVf(), SizeModel::fixed(1472), ArrivalModel::paced(),
        aggressorRxRate, 0xa66e2);
    v.faults.wireCrcRate = 0.010;
    v.faults.wireTruncateRate = 0.005;
    v.faults.wireRuntRate = 0.005;
    v.faults.txPoisonRate = 0.010;
    v.faults.memFaultRate = 0.004;
    v.faults.doorbellDropRate = 0.050;
    v.faults.watchdogCycles = 50000; // 250 us at 200 MHz
    return v;
}

/** Per-VF delivered-goodput deltas over the measurement window. */
struct VfWindow
{
    std::vector<VnicMux::VfTotals> start;
    std::vector<VnicMux::VfTotals> end;

    std::uint64_t
    txFrames(unsigned vf) const
    {
        return end[vf].txFrames - start[vf].txFrames;
    }

    std::uint64_t
    rxFrames(unsigned vf) const
    {
        return end[vf].rxFrames - start[vf].rxFrames;
    }

    double
    txGbps(unsigned vf, Tick measure) const
    {
        double secs = static_cast<double>(measure) / tickPerSec;
        return (end[vf].txPayloadBytes - start[vf].txPayloadBytes) *
               8.0 / secs / 1e9;
    }

    double
    rxGbps(unsigned vf, Tick measure) const
    {
        double secs = static_cast<double>(measure) / tickPerSec;
        return (end[vf].rxPayloadBytes - start[vf].rxPayloadBytes) *
               8.0 / secs / 1e9;
    }
};

std::vector<VnicMux::VfTotals>
snapshot(const VnicMux &mux)
{
    std::vector<VnicMux::VfTotals> t;
    for (unsigned vf = 0; vf < mux.vfCount(); ++vf)
        t.push_back(mux.totals(vf));
    return t;
}

/** Run one vnic config, snapshotting per-VF totals at the window. */
NicResults
runVnic(NicController &nic, VfWindow &w)
{
    VnicMux *mux = nic.vnicMux();
    return nic.runWindow(
        warmupWindow(), [&] { w.start = snapshot(*mux); },
        measureWindow(), [&] { w.end = snapshot(*mux); });
}

obs::json::Value
vfMetrics(NicController &nic, const VfWindow &w, Tick measure)
{
    using obs::json::Value;
    Value all = Value::object();
    const VnicMux *mux = nic.vnicMux();
    for (unsigned vf = 0; vf < mux->vfCount(); ++vf) {
        Value v = Value::object();
        v.set("txGbps", w.txGbps(vf, measure));
        v.set("rxGbps", w.rxGbps(vf, measure));
        v.set("txFrames", w.txFrames(vf));
        v.set("rxFrames", w.rxFrames(vf));
        v.set("txPosted",
              w.end[vf].txPosted - w.start[vf].txPosted);
        v.set("rxPoliced", mux->totals(vf).rxPoliced);
        v.set("commitStalls", mux->totals(vf).commitStalls);
        v.set("admitDefers", mux->totals(vf).admitDefers);
        v.set("doorbellRings", mux->totals(vf).doorbellRings);
        if (const FaultInjector *inj = nic.faultInjector())
            v.set("faultsInjected", inj->counters(vf).totalInjected());
        all.set(mux->vfConfig(vf).name.empty()
                    ? "vf" + std::to_string(vf)
                    : mux->vfConfig(vf).name,
                std::move(v));
    }
    return all;
}

void
checkNoCorruption(NicController &nic, const NicResults &r,
                  const char *row)
{
    std::printf("[%s] %.2f Gb/s duplex, %llu errors\n", row,
                r.totalUdpGbps,
                static_cast<unsigned long long>(r.errors));
    check(r.errors == 0, "validation errors (ordering/integrity)");
    check(nic.txFlowSink().integrityErrors() == 0,
          "corrupted payloads reached the wire-side flow validator");
    check(nic.rxFlowSink().integrityErrors() == 0,
          "corrupted payloads reached the host-side flow validator");
}

/** The aggressor's storm is real, fully accounted to its tenant, and
 *  invisible from the victim's counters. */
void
checkBlastRadius(NicController &nic)
{
    const FaultInjector *inj = nic.faultInjector();
    check(inj != nullptr, "fault injector missing on the storm run");
    if (!inj)
        return;
    check(inj->tenantCount() == 2, "expected one tenant per VF");

    // The victim's streams were never even consulted.
    const FaultInjector::Counters &vic = inj->counters(0);
    check(vic.totalInjected() == 0,
          "faults leaked into the victim tenant");
    check(vic.memRetries.value() == 0 && vic.memDrops.value() == 0,
          "recovery actions charged to the victim tenant");
    check(vic.doorbellRetries.value() == 0,
          "doorbell retries charged to the victim tenant");

    // The aggressor's really happened, at soak intensity...
    const FaultInjector::Counters &agg = inj->counters(1);
    check(agg.totalInjected() > 0, "aggressor storm never fired");
    check(agg.doorbellLost.value() > 0,
          "no aggressor doorbells lost during the storm");

    // ...and every injected fault is matched by its recovery action.
    check(agg.memFaults.value() ==
              agg.memRetries.value() + agg.memDrops.value(),
          "aggressor memory faults != retries + drops");
    MacRx &rx = nic.macRxAssist();
    check(inj->wireCrcInjected() == rx.crcDrops(),
          "CRC injections != MAC CRC drops");
    check(inj->wireTruncInjected() == rx.truncatedDrops(),
          "truncation injections != MAC truncation drops");
    check(inj->wireRuntInjected() == rx.runtDrops(),
          "runt injections != MAC runt drops");
    std::uint64_t poisoned = agg.txPoisoned.value();
    std::uint64_t skips = agg.poisonSkips.value();
    check(skips <= poisoned, "more poison skips than poisoned frames");
    check(poisoned - skips <= nic.config().firmware.txSlots,
          "unskipped poisoned frames exceed the in-flight window");

    // The per-tenant stat subtrees mirror the live counters.
    const obs::StatGroup &t = nic.statTree();
    check(t.value("vf.aggressor.fault.mem.faults_injected") ==
              static_cast<double>(agg.memFaults.value()),
          "stat tree vf.aggressor.fault.mem.faults_injected mismatch");
    check(t.value("vf.victim.fault.doorbell.lost") == 0.0,
          "stat tree vf.victim.fault.doorbell.lost nonzero");
}

} // namespace

int
main(int argc, char **argv)
{
    quick = obs::hasFlag(argc, argv, "--quick");

    std::printf("VF isolation soak: %u flows/VF, 6 cores @ 200 MHz, "
                "victim tx contract %.1f Gb/s\n\n",
                flowsPerVf(), victimTxGbps);

    obs::BenchReport report("vf_isolation");
    auto addRow = [&](const char *name, NicController &nic,
                      const NicResults &r, const VfWindow &w,
                      Tick measure = 0) {
        if (!measure)
            measure = measureWindow();
        obs::json::Value cfg = obs::json::Value::object();
        cfg.set("vfs", nic.vnicMux()->vfCount());
        cfg.set("flowsPerVf", flowsPerVf());
        cfg.set("victimTxGbps", victimTxGbps);
        obs::json::Value m = nicRunMetrics(r);
        m.set("vf", vfMetrics(nic, w, measure));
        report.addRow(name, std::move(cfg), std::move(m));
    };

    // Row 1: the victim alone -- the isolation baseline.
    NicConfig soloCfg = vnicBase();
    soloCfg.vfs = {victimVf()};
    NicController solo(soloCfg);
    VfWindow soloW;
    NicResults r0 = runVnic(solo, soloW);
    checkNoCorruption(solo, r0, "solo_victim");
    double soloTx = soloW.txGbps(0, measureWindow());
    double soloRx = soloW.rxGbps(0, measureWindow());
    // The contract is a ceiling and the pipeline has headroom for
    // 2 Gb/s, so the solo victim must be close to (and never above
    // by more than the burst slack) its contracted rate.
    check(soloTx > 0.9 * victimTxGbps,
          "solo victim tx far below its contracted rate");
    check(soloTx < 1.1 * victimTxGbps,
          "solo victim tx above its contracted ceiling");
    addRow("solo_victim", solo, r0, soloW);

    // Row 2: the same victim next to a storming, saturating neighbor.
    NicConfig stormCfg = vnicBase();
    stormCfg.vfs = {victimVf(), aggressorVf()};
    NicController storm(stormCfg);
    VfWindow stormW;
    NicResults r1 = runVnic(storm, stormW);
    checkNoCorruption(storm, r1, "storm_neighbor");
    checkBlastRadius(storm);
    double stormTx = stormW.txGbps(0, measureWindow());
    double stormRx = stormW.rxGbps(0, measureWindow());
    std::printf("  victim tx %.3f Gb/s (solo %.3f), "
                "rx %.3f Gb/s (solo %.3f)\n",
                stormTx, soloTx, stormRx, soloRx);
    check(stormTx >= 0.95 * soloTx,
          "victim tx under neighbor storm below 95% of solo");
    check(stormRx >= 0.95 * soloRx,
          "victim rx under neighbor storm below 95% of solo");
    addRow("storm_neighbor", storm, r1, stormW);

    // Row 3: three backlogged unlimited tenants at weights 1:2:4.
    NicConfig fairCfg = vnicBase();
    const double weights[3] = {1.0, 2.0, 4.0};
    for (unsigned i = 0; i < 3; ++i) {
        VfConfig v;
        v.name = "w" + std::to_string(static_cast<int>(weights[i]));
        v.weight = weights[i];
        v.txTraffic = TrafficProfile::uniform(
            flowsPerVf(), SizeModel::fixed(1472),
            ArrivalModel::paced(), 1.0, 0xfa1 + i);
        fairCfg.vfs.push_back(v);
    }
    NicController fair(fairCfg);
    VfWindow fairW;
    NicResults r2 = runVnic(fair, fairW);
    checkNoCorruption(fair, r2, "weighted_fair");
    std::uint64_t totalFrames = 0;
    for (unsigned vf = 0; vf < 3; ++vf)
        totalFrames += fairW.txFrames(vf);
    check(totalFrames == r2.txFrames,
          "per-VF frame attribution does not sum to the run total");
    for (unsigned vf = 0; vf < 3; ++vf) {
        double share = static_cast<double>(fairW.txFrames(vf)) /
                       static_cast<double>(totalFrames);
        double target = weights[vf] / 7.0;
        std::printf("  vf %s: share %.4f (target %.4f)\n",
                    fair.vnicMux()->vfConfig(vf).name.c_str(), share,
                    target);
        check(share >= 0.95 * target && share <= 1.05 * target,
              "weighted tx share off its DRR weight by more than 5%");
    }
    addRow("weighted_fair", fair, r2, fairW);

    // Row 4: dozens of tenants -- 32 backlogged VFs in four weight
    // classes (1:2:3:4, eight tenants each) share the transmit path.
    // DRR serves whole frames, so a tenant's delivered count can sit a
    // frame or two off its ideal share; the gate is 5% relative with
    // that quantization floor made explicit.
    NicConfig manyCfg = vnicBase();
    // 32 tenants over a 128-slot ring is only 4 in-flight frames per
    // tenant; double the ring so a high-weight tenant's share is set
    // by the arbiter, not by posting starvation (residence ~300 us,
    // still well inside warmup).
    manyCfg.sendRingFrames = 256;
    constexpr unsigned manyVfs = 32;
    double manyWeightTotal = 0.0;
    for (unsigned i = 0; i < manyVfs; ++i) {
        VfConfig v;
        double w = 1.0 + static_cast<double>(i % 4);
        v.name = "t" + std::to_string(i);
        v.weight = w;
        manyWeightTotal += w;
        v.txTraffic = TrafficProfile::uniform(
            flowsPerVf(), SizeModel::fixed(1472),
            ArrivalModel::paced(), 1.0, 0x3e0a1 + i);
        manyCfg.vfs.push_back(v);
    }
    NicController many(manyCfg);
    VfWindow manyW;
    // Share convergence needs a few thousand delivered frames (a
    // weight-1 tenant owns only 1/80 of the wire), so this row keeps
    // the full windows even under --quick.
    VnicMux *manyMux = many.vnicMux();
    NicResults r3 = many.runWindow(
        2 * tickPerMs, [&] { manyW.start = snapshot(*manyMux); },
        4 * tickPerMs, [&] { manyW.end = snapshot(*manyMux); });
    checkNoCorruption(many, r3, "many_tenants");
    std::uint64_t manyFrames = 0;
    for (unsigned vf = 0; vf < manyVfs; ++vf)
        manyFrames += manyW.txFrames(vf);
    check(manyFrames == r3.txFrames,
          "32-tenant frame attribution does not sum to the run total");
    double worstRel = 0.0;
    for (unsigned vf = 0; vf < manyVfs; ++vf) {
        double share = static_cast<double>(manyW.txFrames(vf)) /
                       static_cast<double>(manyFrames);
        double target = manyCfg.vfs[vf].weight / manyWeightTotal;
        double slack = std::max(0.05 * target,
                                2.0 / static_cast<double>(manyFrames));
        double rel = std::abs(share - target) / target;
        if (rel > worstRel)
            worstRel = rel;
        check(share >= target - slack && share <= target + slack,
              "32-tenant tx share off its DRR weight by more than 5%");
    }
    std::printf("  32 tenants: %llu frames, worst share error %.2f%%\n",
                static_cast<unsigned long long>(manyFrames),
                100.0 * worstRel);
    addRow("many_tenants", many, r3, manyW, 4 * tickPerMs);

    if (auto path = obs::jsonPathFromArgs(argc, argv, "vf_isolation")) {
        report.write(*path);
        std::printf("wrote %s (%zu rows)\n", path->c_str(),
                    report.rows());
    }

    if (failures) {
        std::printf("\n%u isolation violation(s)\n", failures);
        return 1;
    }
    std::printf("\nall isolation contracts held\n");
    return 0;
}
