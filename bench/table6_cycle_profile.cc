/**
 * @file
 * Table 6: cycles spent in each function per packet for each
 * frame-ordering method -- software-only at 200 MHz vs RMW-enhanced at
 * 166 MHz, both with 6 cores at line rate on maximum-sized frames.
 *
 * Paper anchors: both configurations achieve line rate; the
 * RMW-enhanced configuration reduces send cycles by 28.4% and receive
 * cycles by 4.7%, enabling the 17% clock reduction.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

int
main()
{
    printHeader("Table 6: cycles per packet for each frame-ordering "
                "method");

    NicConfig sw_cfg;
    sw_cfg.cores = 6;
    sw_cfg.cpuMhz = 200.0;
    NicController sw_nic(sw_cfg);
    NicResults sw = sw_nic.run(warmupTicks, measureTicks);

    NicConfig rmw_cfg;
    rmw_cfg.cores = 6;
    rmw_cfg.cpuMhz = 166.0;
    rmw_cfg.firmware.rmwEnhanced = true;
    NicController rmw_nic(rmw_cfg);
    NicResults rmw = rmw_nic.run(warmupTicks, measureTicks);

    std::printf("%-30s | %14s | %14s\n", "Function",
                "SW-only@200MHz", "RMW@166MHz");
    std::printf("%.*s\n", 66,
                "----------------------------------------------------"
                "--------------");

    const FuncTag send_rows[] = {FuncTag::FetchSendBd, FuncTag::SendFrame,
                                 FuncTag::SendDispatch, FuncTag::SendLock};
    const FuncTag recv_rows[] = {FuncTag::FetchRecvBd, FuncTag::RecvFrame,
                                 FuncTag::RecvDispatch, FuncTag::RecvLock};

    double sw_send = 0, rmw_send = 0, sw_recv = 0, rmw_recv = 0;
    for (FuncTag t : send_rows) {
        double a = perFrame(sw, t).cycles;
        double b = perFrame(rmw, t).cycles;
        sw_send += a;
        rmw_send += b;
        std::printf("%-30s | %14.1f | %14.1f\n", funcTagName(t), a, b);
    }
    std::printf("%-30s | %14.1f | %14.1f\n", "Send Total", sw_send,
                rmw_send);
    for (FuncTag t : recv_rows) {
        double a = perFrame(sw, t).cycles;
        double b = perFrame(rmw, t).cycles;
        sw_recv += a;
        rmw_recv += b;
        std::printf("%-30s | %14.1f | %14.1f\n", funcTagName(t), a, b);
    }
    std::printf("%-30s | %14.1f | %14.1f\n", "Receive Total", sw_recv,
                rmw_recv);

    std::printf("\nRMW effect (paper: send -28.4%%, receive -4.7%%):\n");
    std::printf("  send total:    %+.1f%%\n",
                100.0 * (rmw_send - sw_send) / sw_send);
    std::printf("  receive total: %+.1f%%\n",
                100.0 * (rmw_recv - sw_recv) / sw_recv);
    std::printf("\nLine rate check (both must saturate): "
                "SW %.2f Gb/s @200MHz, RMW %.2f Gb/s @166MHz "
                "(limit %.2f)\n",
                sw.totalUdpGbps, rmw.totalUdpGbps,
                2 * lineRateUdpGbps(udpMaxPayloadBytes));
    std::printf("Idle share: SW %.1f%%, RMW %.1f%%\n",
                100.0 * sw.coreTotals.idleCycles /
                    sw.coreTotals.totalCycles(),
                100.0 * rmw.coreTotals.idleCycles /
                    rmw.coreTotals.totalCycles());
    return 0;
}
