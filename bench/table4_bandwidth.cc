/**
 * @file
 * Table 4: bandwidth required / peak / consumed for the six-core
 * 200 MHz configuration at line rate.
 *
 * Paper values: instruction memory nearly idle (~97% unused port);
 * scratchpads must deliver 4.8 Gb/s but consume 9.4 Gb/s of their
 * overprovisioned banks; frame memory needs 39.5 Gb/s and consumes
 * 39.7 Gb/s (misaligned transmit headers waste a little), out of the
 * 64 Gb/s GDDR peak.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

int
main()
{
    printHeader("Table 4: bandwidth required/peak/consumed "
                "(6 cores @ 200 MHz)");

    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    NicController nic(cfg);
    NicResults r = nic.run(warmupTicks, measureTicks);

    // Required values derive from Section 2.1 of the paper.
    const double spad_required = 4.8;
    const double frame_required = 39.5;
    double spad_peak = cfg.scratchpadBanks * 32.0 * cfg.cpuMhz / 1e3;
    double imem_peak = 16 * 8.0 * cfg.cpuMhz / 1e3;

    std::printf("%-24s | %9s | %9s | %9s\n", "(Gb/s)", "Required",
                "Peak", "Consumed");
    std::printf("%.*s\n", 62,
                "--------------------------------------------------------"
                "------");
    std::printf("%-24s | %9s | %9.1f | %9.2f\n", "Instruction Memory",
                "N/A", imem_peak, r.imemGbps);
    std::printf("%-24s | %9.1f | %9.1f | %9.2f\n", "Scratchpads",
                spad_required, spad_peak, r.spadGbps);
    std::printf("%-24s | %9.1f | %9.1f | %9.2f\n", "Frame Memory",
                frame_required, nic.sdram().peakBandwidthGbps(),
                r.sdramGbps);

    std::printf("\nInstruction-memory port idle %.1f%% of the time "
                "(paper: ~97%%).\n", 100.0 * (1.0 - r.imemUtilization));
    std::printf("Frame memory consumed (%.2f) exceeds required (39.5) "
                "because of misaligned\ntransmit payloads behind "
                "42-byte headers (paper: 39.7).\n", r.sdramGbps);
    std::printf("Scratchpad consumed %.2f Gb/s (paper: 9.4); "
                "overprovisioning keeps conflict\nlatency low: "
                "conflict stalls were %.1f%% of cycles.\n", r.spadGbps,
                100.0 * r.coreTotals.conflictCycles /
                    r.coreTotals.totalCycles());
    return 0;
}
