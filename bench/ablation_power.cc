/**
 * @file
 * Power ablation: the watt cost of each way to reach 10 Gb/s duplex.
 *
 * Quantifies the paper's power argument:
 *  - 6 simple cores at 200 MHz (software-only ordering) vs the same
 *    throughput from 6 cores at 166 MHz (RMW-enhanced): the new
 *    instructions buy a measurable power reduction at equal service;
 *  - a single core clocked high enough to approach line rate burns
 *    more than the six-core cluster (the parallelism-beats-frequency
 *    argument);
 *  - the related-work anchor: Intel's inbound-only TCP accelerator
 *    needed 6.39 W at 5 GHz.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "src/power/power_model.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

void
report(const char *name, const NicConfig &cfg, const NicResults &r)
{
    power::PowerBreakdown b = power::estimate(cfg, r);
    std::printf("%-26s | %6.2f Gb/s | cores %5.2f W | mem %5.2f W | "
                "total %5.2f W | %6.0f nJ/frame\n",
                name, r.totalUdpGbps, b.coresW,
                b.scratchpadW + b.instructionW + b.sdramW, b.totalW(),
                power::energyPerFrameNj(b, r));
}

} // namespace

int
main()
{
    printHeader("Power ablation: routes to 10 Gb/s duplex");

    {
        NicConfig cfg;
        cfg.cores = 6;
        cfg.cpuMhz = 200.0;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        report("6x200 MHz software-only", cfg, r);
    }
    {
        NicConfig cfg;
        cfg.cores = 6;
        cfg.cpuMhz = 166.0;
        cfg.firmware.rmwEnhanced = true;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        report("6x166 MHz RMW-enhanced", cfg, r);
    }
    {
        NicConfig cfg;
        cfg.cores = 8;
        cfg.cpuMhz = 150.0;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        report("8x150 MHz software-only", cfg, r);
    }
    {
        NicConfig cfg;
        cfg.cores = 1;
        cfg.cpuMhz = 1000.0;
        NicController nic(cfg);
        NicResults r = nic.run(warmupTicks, measureTicks);
        report("1x1000 MHz single core", cfg, r);
    }

    std::printf("\nReference: Intel's inbound-only TCP header engine "
                "needed 6.39 W at 5 GHz for the\nsame link (paper "
                "Section 7); the multi-core NIC serves both directions "
                "in ~1-2 W.\nNote: absolute watts are indicative "
                "(130 nm-era constants); ratios are the result.\n");
    return 0;
}
