/**
 * @file
 * Figure 3: collective cache hit ratio of per-processor coherent
 * caches on NIC control data, versus cache capacity.
 *
 * Reproduces the paper's SMPCache study: control-data access traces
 * captured from the live 6-core frame-level simulation drive 8
 * fully-associative caches (6 cores, interleaved DMA pair, interleaved
 * MAC pair) with 16-byte lines under MESI, sweeping capacity from 16 B
 * to 32 KB.  The paper's findings: the hit ratio never exceeds ~55%,
 * and fewer than 1% of writes invalidate another cache -- caching
 * fails for lack of locality, not because of invalidation traffic.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "src/coherence/trace_capture.hh"

using namespace tengig;
using namespace tengig::coherence;

int
main()
{
    std::printf("\n=== Figure 3: cache hit ratio for the 6-core "
                "configuration with MESI coherence ===\n");

    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    NicController nic(cfg);
    Trace trace = captureControlTrace(nic, tickPerMs,
                                      2 * tickPerMs);
    std::printf("captured %zu control-data accesses from the live "
                "firmware run\n\n", trace.size());

    std::printf("%-10s | %-10s | %-22s\n", "Cache size", "Hit ratio",
                "Invalidating writes");
    std::printf("%.*s\n", 50,
                "--------------------------------------------------");

    double max_ratio = 0.0;
    for (std::size_t bytes = 16; bytes <= 32 * 1024; bytes *= 2) {
        CoherentCacheSystem sys(8, bytes, 16, Protocol::MESI);
        sys.run(trace);
        double ratio = sys.stats().hitRatio();
        max_ratio = std::max(max_ratio, ratio);
        char label[32];
        if (bytes >= 1024)
            std::snprintf(label, sizeof(label), "%zuKB", bytes / 1024);
        else
            std::snprintf(label, sizeof(label), "%zuB", bytes);
        std::printf("%-10s | %8.1f%%  | %8.2f%%\n", label,
                    100.0 * ratio,
                    100.0 * sys.stats().invalidatingWriteRatio());
    }

    std::printf("\nPeak collective hit ratio: %.1f%% (paper: never "
                "above ~55%%; low locality, not\ninvalidations, defeats "
                "caching -- hence the program-managed scratchpad).\n",
                100.0 * max_ratio);
    return 0;
}
