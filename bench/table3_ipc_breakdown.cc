/**
 * @file
 * Table 3: breakdown of computation bandwidth in instructions per
 * cycle per core, for six cores at 200 MHz at line rate.
 *
 * Paper values: execution 0.72, instruction-miss stalls 0.01, load
 * stalls 0.12, scratchpad conflict stalls 0.05, pipeline stalls 0.10
 * (total 1.00); the cores sustain 83% of the in-order/no-BP
 * theoretical bound of Table 2.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

int
main()
{
    printHeader("Table 3: per-core IPC breakdown (6 cores @ 200 MHz)");

    NicConfig cfg;
    cfg.cores = 6;
    cfg.cpuMhz = 200.0;
    NicController nic(cfg);
    NicResults r = nic.run(warmupTicks, measureTicks);

    const CoreStats &s = r.coreTotals;
    double total = static_cast<double>(s.totalCycles());
    auto frac = [&](std::uint64_t v) {
        return static_cast<double>(v) / total;
    };

    std::printf("%-28s | %10s | %10s\n", "Component", "measured",
                "paper");
    std::printf("%.*s\n", 54,
                "------------------------------------------------------");
    std::printf("%-28s | %10.2f | %10.2f\n", "Execution",
                frac(s.executeCycles), 0.72);
    std::printf("%-28s | %10.2f | %10.2f\n", "Instruction miss stalls",
                frac(s.imissCycles), 0.01);
    std::printf("%-28s | %10.2f | %10.2f\n", "Load stalls",
                frac(s.loadStallCycles), 0.12);
    std::printf("%-28s | %10.2f | %10.2f\n", "Scratchpad conflict stalls",
                frac(s.conflictCycles), 0.05);
    std::printf("%-28s | %10.2f | %10.2f\n", "Pipeline stalls",
                frac(s.pipelineCycles), 0.10);
    std::printf("%-28s | %10.2f | %10s\n", "Idle",
                frac(s.idleCycles), "--");
    std::printf("%-28s | %10.2f | %10.2f\n", "Total", 1.0, 1.00);

    std::printf("\nPer-core IPC: %.3f (paper: 0.72); throughput %.2f "
                "Gb/s duplex at %.0f%% of line rate.\n",
                r.aggregateIpc / cfg.cores, r.totalUdpGbps,
                100.0 * r.totalUdpGbps /
                    (2 * lineRateUdpGbps(udpMaxPayloadBytes)));
    return 0;
}
