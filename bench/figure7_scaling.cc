/**
 * @file
 * Figure 7: full-duplex UDP throughput while scaling core frequency
 * and the number of processors (maximum-sized 1472 B datagrams,
 * 4 scratchpad banks, software-only firmware).
 *
 * Paper shape: 1-2 cores are far from line rate at any embedded
 * frequency; 4 cores get close; 6 and 8 cores reach (within a few
 * percent of) the 19.14 Gb/s duplex Ethernet limit by 175-200 MHz,
 * while a single core would need ~800 MHz.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

double
throughput(unsigned cores, double mhz)
{
    NicConfig cfg;
    cfg.cores = cores;
    cfg.cpuMhz = mhz;
    NicController nic(cfg);
    return nic.run(warmupTicks, measureTicks).totalUdpGbps;
}

} // namespace

int
main()
{
    printHeader("Figure 7: scaling core frequency and processor count "
                "(duplex UDP Gb/s)");

    const double freqs[] = {100, 125, 150, 166, 175, 200};
    const unsigned core_counts[] = {1, 2, 4, 6, 8};
    const double limit = 2 * lineRateUdpGbps(udpMaxPayloadBytes);

    std::printf("%-10s", "MHz");
    for (unsigned c : core_counts)
        std::printf(" %6u-core", c);
    std::printf("\n%.*s\n", 10 + 11 * 5,
                "-------------------------------------------------------"
                "-----------");
    for (double f : freqs) {
        std::printf("%-10.0f", f);
        for (unsigned c : core_counts)
            std::printf(" %11.2f", throughput(c, f));
        std::printf("\n");
    }
    std::printf("%-10s %11.2f  <- Ethernet limit (duplex)\n", "", limit);

    // The paper's single-core anchor: line rate needs ~800 MHz.
    std::printf("\nSingle core at high frequency: 400 MHz -> %.2f, "
                "600 MHz -> %.2f, 800 MHz -> %.2f Gb/s\n",
                throughput(1, 400), throughput(1, 600),
                throughput(1, 800));
    return 0;
}
