/**
 * @file
 * Figure 7: full-duplex UDP throughput while scaling core frequency
 * and the number of processors (maximum-sized 1472 B datagrams,
 * 4 scratchpad banks, software-only firmware).
 *
 * Paper shape: 1-2 cores are far from line rate at any embedded
 * frequency; 4 cores get close; 6 and 8 cores reach (within a few
 * percent of) the 19.14 Gb/s duplex Ethernet limit by 175-200 MHz,
 * while a single core would need ~800 MHz.
 *
 * With --json[=path] the full sweep is also written as a
 * tengig-bench-v1 document (one row per cores x MHz point, metrics
 * from bench::nicRunMetrics), default BENCH_figure7_scaling.json.
 * --quick shrinks the sweep and the measurement window for smoke
 * tests.  --jobs=N runs the sweep points on N worker threads; every
 * point is an isolated deterministic simulation, so the table and the
 * JSON report are byte-identical to a serial sweep.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

using namespace tengig;
using namespace tengig::bench;

namespace {

NicResults
measure(unsigned cores, double mhz, Tick warmup, Tick measure_ticks)
{
    NicConfig cfg;
    cfg.cores = cores;
    cfg.cpuMhz = mhz;
    NicController nic(cfg);
    return nic.run(warmup, measure_ticks);
}

} // namespace

int
main(int argc, char **argv)
{
    printHeader("Figure 7: scaling core frequency and processor count "
                "(duplex UDP Gb/s)");

    bool quick = obs::hasFlag(argc, argv, "--quick");
    unsigned jobs = jobsFromArgs(argc, argv);
    Tick warmup = quick ? tickPerMs / 4 : warmupTicks;
    Tick window = quick ? tickPerMs / 2 : measureTicks;

    std::vector<double> freqs = quick
        ? std::vector<double>{166, 200}
        : std::vector<double>{100, 125, 150, 166, 175, 200};
    std::vector<unsigned> core_counts =
        quick ? std::vector<unsigned>{2, 6}
              : std::vector<unsigned>{1, 2, 4, 6, 8};
    const double limit = 2 * lineRateUdpGbps(udpMaxPayloadBytes);

    // Sweep points in table order, plus the paper's single-core anchor
    // (line rate needs ~800 MHz) appended at the end.
    struct Point { unsigned cores; double mhz; };
    std::vector<Point> points;
    for (double f : freqs)
        for (unsigned c : core_counts)
            points.push_back({c, f});
    std::size_t grid = points.size();
    const std::vector<double> anchor_mhz{400, 600, 800};
    if (!quick)
        for (double m : anchor_mhz)
            points.push_back({1, m});

    std::vector<NicResults> results = runSweep(
        jobs, points.size(), [&](std::size_t i) {
            return measure(points[i].cores, points[i].mhz, warmup, window);
        });

    obs::BenchReport report("figure7_scaling");

    std::printf("%-10s", "MHz");
    for (unsigned c : core_counts)
        std::printf(" %6u-core", c);
    std::printf("\n%.*s\n",
                static_cast<int>(10 + 11 * core_counts.size()),
                "-------------------------------------------------------"
                "-----------");
    std::size_t idx = 0;
    for (double f : freqs) {
        std::printf("%-10.0f", f);
        for (unsigned c : core_counts) {
            const NicResults &r = results[idx++];
            std::printf(" %11.2f", r.totalUdpGbps);
            obs::json::Value cfg = obs::json::Value::object();
            cfg.set("cores", c);
            cfg.set("cpuMhz", f);
            report.addRow(std::to_string(c) + " cores @ " +
                              std::to_string(static_cast<int>(f)) +
                              " MHz",
                          std::move(cfg), nicRunMetrics(r));
        }
        std::printf("\n");
    }
    std::printf("%-10s %11.2f  <- Ethernet limit (duplex)\n", "", limit);

    if (!quick) {
        std::printf("\nSingle core at high frequency: 400 MHz -> %.2f, "
                    "600 MHz -> %.2f, 800 MHz -> %.2f Gb/s\n",
                    results[grid].totalUdpGbps,
                    results[grid + 1].totalUdpGbps,
                    results[grid + 2].totalUdpGbps);
    }

    if (auto path = obs::jsonPathFromArgs(argc, argv, "figure7_scaling")) {
        report.write(*path);
        std::printf("\nwrote %s (%zu rows)\n", path->c_str(),
                    report.rows());
    }
    return 0;
}
